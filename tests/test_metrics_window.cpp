// Sliding-window SLO metrics (src/telemetry/sliding_window.hpp,
// src/service/metrics_window.*): slice rotation and lazy clearing,
// horizon merging, deterministic quantile snapshots, the heartbeat
// line contract, the service Prometheus families, and the live
// MpkService::window() end-to-end path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gen/stencil.hpp"
#include "service/metrics_window.hpp"
#include "service/service.hpp"
#include "telemetry/sliding_window.hpp"
#include "test_util.hpp"

namespace fbmpk::service {
namespace {

constexpr std::int64_t kSec = 1'000'000'000;

TEST(SlidingWindow, RotationLazilyClearsRecycledSlots) {
  telemetry::SlidingWindow<int> win(/*slice_ns=*/100, /*slices=*/4);
  win.at(50) = 7;    // epoch 0
  win.at(150) = 8;   // epoch 1
  win.at(250) = 9;   // epoch 2

  int sum = 0, seen = 0;
  win.for_each_live(/*horizon_ns=*/300, /*t_ns=*/250, [&](const int& v) {
    sum += v;
    ++seen;
  });
  EXPECT_EQ(seen, 3);
  EXPECT_EQ(sum, 7 + 8 + 9);

  // Epoch 4 reuses epoch 0's ring slot: the stale 7 must be cleared by
  // the write, not merged into future readers.
  EXPECT_EQ(win.at(450), 0);
  win.at(450) = 11;
  sum = 0;
  win.for_each_live(/*horizon_ns=*/400, /*t_ns=*/450, [&](const int& v) {
    sum += v;
  });
  EXPECT_EQ(sum, 8 + 9 + 11);
}

TEST(SlidingWindow, HorizonExcludesSlicesOlderThanLive) {
  telemetry::SlidingWindow<int> win(100, 8);
  win.at(50) = 1;   // epoch 0
  win.at(550) = 2;  // epoch 5
  int sum = 0;
  // Horizon of one slice: only the current epoch survives.
  win.for_each_live(100, 550, [&](const int& v) { sum += v; });
  EXPECT_EQ(sum, 2);
  // A huge horizon is clamped to the ring size, never out of bounds.
  sum = 0;
  win.for_each_live(1'000'000, 550, [&](const int& v) { sum += v; });
  EXPECT_EQ(sum, 3);
}

TEST(SlidingWindow, WindowedHistogramMergesOnlyLiveSlices) {
  telemetry::WindowedHistogram wh(/*slice_ns=*/kSec, /*slices=*/4);
  wh.add(1000, 0);
  wh.add(1000, kSec / 2);
  wh.add(4000, 2 * kSec);
  const telemetry::Histogram recent = wh.merged(/*horizon_ns=*/kSec,
                                                /*t_ns=*/2 * kSec);
  EXPECT_EQ(recent.count, 1u);
  const telemetry::Histogram all = wh.merged(4 * kSec, 2 * kSec);
  EXPECT_EQ(all.count, 3u);
}

TEST(MetricsWindow, SnapshotFoldsLiveSlicesDeterministically) {
  MetricsWindows mw(/*slice_ns=*/5 * kSec, /*slices=*/13);
  const std::int64_t t0 = 100 * kSec;
  // 99 fast requests at ~1 ms, one slow at ~1.07 s (2^30 ns), spread
  // over two slices.
  for (int i = 0; i < 99; ++i)
    mw.record_request(1'000'000, /*rung=*/0, /*ok=*/true,
                      ErrorCode::kInternal /* ignored when ok */, t0 + i);
  mw.record_request(std::uint64_t{1} << 30, /*rung=*/2, /*ok=*/false,
                    ErrorCode::kTimeout, t0 + 6 * kSec);
  mw.record_cache(true, t0);
  mw.record_cache(true, t0);
  mw.record_cache(false, t0 + 6 * kSec);
  mw.record_batch_width(4, t0);
  mw.record_batch_width(2, t0 + 6 * kSec);
  mw.sample_queue_depth(1, t0);
  mw.sample_queue_depth(5, t0 + 6 * kSec);

  const ServiceMetricsWindow w =
      mw.snapshot(/*horizon_seconds=*/60.0, t0 + 7 * kSec);
  EXPECT_EQ(w.completed, 100u);
  EXPECT_EQ(w.ok, 99u);
  EXPECT_EQ(w.timeouts, 1u);
  EXPECT_EQ(w.rung_completions[0], 99u);
  EXPECT_EQ(w.rung_completions[2], 1u);
  // p50 sits in the 1 ms octave; p99 must see the slow outlier's octave.
  EXPECT_GT(w.p50_ms, 0.5);
  EXPECT_LT(w.p50_ms, 3.0);
  EXPECT_GT(w.p99_ms, w.p50_ms);
  EXPECT_GT(w.max_ms, 1000.0);
  EXPECT_NEAR(w.cache_hit_ratio, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(w.batch_width_mean, 3.0, 1e-9);
  EXPECT_NEAR(w.queue_depth_mean, 3.0, 1e-9);
  EXPECT_EQ(w.queue_depth_max, 5u);
  EXPECT_EQ(w.queue_samples, 2u);
  EXPECT_EQ(w.batches, 2u);

  // 70 s later everything has aged out: the window reads empty, not
  // stale.
  const ServiceMetricsWindow later = mw.snapshot(60.0, t0 + 77 * kSec);
  EXPECT_EQ(later.completed, 0u);
  EXPECT_EQ(later.p99_ms, 0.0);
  EXPECT_EQ(later.cache_hits + later.cache_misses, 0u);
}

TEST(MetricsWindow, HeartbeatLineRoundTripsAllFields) {
  ServiceMetricsWindow w;
  w.window_seconds = 60.0;
  w.completed = 123;
  w.ok = 120;
  w.p50_ms = 1.25;
  w.p95_ms = 3.5;
  w.p99_ms = 7.75;
  w.queue_depth_mean = 0.5;
  w.queue_depth_max = 3;
  w.batch_width_mean = 1.75;
  w.cache_hit_ratio = 0.9375;
  w.rung_completions = {118, 2, 0};
  w.timeouts = 1;
  w.overloaded = 2;
  w.cancelled = 0;

  const std::string line = format_heartbeat(w);
  EXPECT_EQ(line.rfind("fbmpk-heartbeat ", 0), 0u) << line;
  ServiceMetricsWindow back;
  ASSERT_TRUE(parse_heartbeat(line, &back)) << line;
  EXPECT_EQ(back.window_seconds, w.window_seconds);
  EXPECT_EQ(back.completed, w.completed);
  EXPECT_EQ(back.ok, w.ok);
  EXPECT_EQ(back.p50_ms, w.p50_ms);
  EXPECT_EQ(back.p95_ms, w.p95_ms);
  EXPECT_EQ(back.p99_ms, w.p99_ms);
  EXPECT_EQ(back.queue_depth_mean, w.queue_depth_mean);
  EXPECT_EQ(back.queue_depth_max, w.queue_depth_max);
  EXPECT_EQ(back.batch_width_mean, w.batch_width_mean);
  EXPECT_EQ(back.cache_hit_ratio, w.cache_hit_ratio);
  EXPECT_EQ(back.rung_completions, w.rung_completions);
  EXPECT_EQ(back.timeouts, w.timeouts);
  EXPECT_EQ(back.overloaded, w.overloaded);
  EXPECT_EQ(back.cancelled, w.cancelled);

  EXPECT_FALSE(parse_heartbeat("", &back));
  EXPECT_FALSE(parse_heartbeat("fbmpk-heartbeat win=60s done=1", &back));
  EXPECT_FALSE(parse_heartbeat("not-a-heartbeat at all", &back));
  EXPECT_FALSE(parse_heartbeat(line, nullptr));
}

TEST(MetricsWindow, ServiceFamiliesExposeSloAndTotals) {
  ServiceStats stats;
  stats.submitted = 10;
  stats.completed = 9;
  stats.timeouts = 1;
  stats.quarantines = 2;
  stats.cache.hits = 5;
  stats.cache.misses = 4;
  ServiceMetricsWindow w;
  w.window_seconds = 60.0;
  w.completed = 9;
  w.p50_ms = 1.0;
  w.p95_ms = 2.0;
  w.p99_ms = 4.0;
  w.mean_ms = 1.5;
  w.queue_depth_mean = 0.25;
  w.cache_hit_ratio = 5.0 / 9.0;
  w.rung_completions = {7, 2, 0};

  const std::string out =
      telemetry::prometheus_render(service_families(stats, w));
  EXPECT_NE(out.find("# TYPE fbmpk_request_latency_seconds summary\n"),
            std::string::npos);
  EXPECT_NE(out.find("fbmpk_request_latency_seconds{quantile=\"0.5\"} "
                     "0.001\n"),
            std::string::npos);
  EXPECT_NE(out.find("fbmpk_request_latency_seconds{quantile=\"0.99\"} "
                     "0.004\n"),
            std::string::npos);
  EXPECT_NE(out.find("fbmpk_request_latency_seconds_count 9\n"),
            std::string::npos);
  EXPECT_NE(out.find("fbmpk_queue_depth 0.25\n"), std::string::npos);
  EXPECT_NE(out.find("fbmpk_rung_completions{rung=\"engine\"} 7\n"),
            std::string::npos);
  EXPECT_NE(out.find("fbmpk_rung_completions{rung=\"barrier\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE fbmpk_requests_submitted_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("fbmpk_requests_submitted_total 10\n"),
            std::string::npos);
  EXPECT_NE(out.find("fbmpk_quarantines_total 2\n"), std::string::npos);
  EXPECT_NE(out.find("fbmpk_cache_hits_total 5\n"), std::string::npos);
}

TEST(MetricsWindow, LiveServiceWindowSeesCompletionsAndCacheHits) {
  const auto a = gen::make_laplacian_2d(16, 16);
  AlignedVector<double> x(static_cast<std::size_t>(a.rows()), 1.0);
  ServiceOptions opts;
  opts.workers = 1;
  MpkService svc(opts);
  AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
  for (int i = 0; i < 3; ++i) {
    const RequestResult r = svc.power(a, x, 2, y);
    ASSERT_TRUE(r.status.ok()) << r.status.error().what();
  }

  const ServiceMetricsWindow w = svc.window(60.0);
  EXPECT_EQ(w.completed, 3u);
  EXPECT_EQ(w.ok, 3u);
  // Which rung serves depends on the plan's capabilities (an engine
  // gap falls through silently); the window must still attribute every
  // completion to exactly one rung.
  EXPECT_EQ(w.rung_completions[0] + w.rung_completions[1] +
                w.rung_completions[2],
            3u);
  EXPECT_EQ(w.cache_hits, 2u);
  EXPECT_EQ(w.cache_misses, 1u);
  EXPECT_GT(w.max_ms, 0.0);
  // The window snapshot and the heartbeat agree with the monotonic
  // totals for a fresh service.
  ServiceMetricsWindow back;
  ASSERT_TRUE(parse_heartbeat(format_heartbeat(w), &back));
  EXPECT_EQ(back.completed, svc.stats().completed);
}

}  // namespace
}  // namespace fbmpk::service
