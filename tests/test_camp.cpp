// Tests for the CA-MPK comparator (communication-avoiding blocked
// matrix-powers kernel): correctness against the standard baseline and
// the redundancy-growth property the paper's related-work critique
// rests on (§VI).
#include <gtest/gtest.h>

#include "gen/stencil.hpp"
#include "gen/suite.hpp"
#include "kernels/camp.hpp"
#include "kernels/mpk_baseline.hpp"
#include "support/threading.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

class CampCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<int, index_t>> {};

TEST_P(CampCorrectnessTest, PowerAllMatchesBaseline) {
  const auto [k, num_blocks] = GetParam();
  const auto a = test::random_matrix(250, 6.0, false, 31);
  const auto x = test::random_vector(250, 32);
  const auto plan = camp_build(a, k, num_blocks);

  AlignedVector<double> basis_camp(250 * (k + 1));
  camp_power_all<double>(a, plan, x, basis_camp);

  MpkWorkspace<double> ws;
  AlignedVector<double> basis_ref(250 * (k + 1));
  mpk_power_all<double>(a, x, k, basis_ref, ws);

  for (int p = 0; p <= k; ++p)
    test::expect_near_rel(
        std::span<const double>(basis_camp).subspan(250 * p, 250),
        std::span<const double>(basis_ref).subspan(250 * p, 250),
        1e-12 * std::pow(4.0, p), "camp power");
}

INSTANTIATE_TEST_SUITE_P(
    PowersAndBlocks, CampCorrectnessTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values<index_t>(1, 4, 16, 64)));

TEST(Camp, PowerMatchesOnGridAndSuite) {
  for (const char* name : {"G3_circuit", "cage14"}) {
    const auto m = gen::make_suite_matrix(name, 0.02);
    const index_t n = m.matrix.rows();
    const auto x = test::random_vector(n, 7);
    const auto plan = camp_build(m.matrix, 4, 16);
    AlignedVector<double> y(n), ref(n);
    camp_power<double>(m.matrix, plan, x, y);
    MpkWorkspace<double> ws;
    mpk_power<double>(m.matrix, x, 4, ref, ws);
    test::expect_near_rel(y, ref, 1e-8, name);
  }
}

TEST(Camp, RedundancyGrowsWithK) {
  // The structural core of the paper's LB-MPK critique: ghost regions —
  // and hence redundant work — expand with every extra power.
  const auto a = gen::make_laplacian_2d(40, 40);
  double prev = 1.0;
  for (int k : {1, 2, 4, 8}) {
    const auto plan = camp_build(a, k, 16);
    const double red = plan.redundancy();
    EXPECT_GT(red, prev * 0.999) << "k=" << k;
    prev = red;
  }
  EXPECT_GT(prev, 1.5);  // at k=8 ghosts dominate 100-row blocks
}

TEST(Camp, RedundancyGrowsWithBlockCount) {
  const auto a = gen::make_laplacian_2d(40, 40);
  const double few = camp_build(a, 4, 4).redundancy();
  const double many = camp_build(a, 4, 64).redundancy();
  EXPECT_GT(many, few);
  EXPECT_DOUBLE_EQ(camp_build(a, 4, 1).redundancy(), 1.0);  // no ghosts
}

TEST(Camp, SingleBlockEqualsStandardComputation) {
  const auto a = test::random_matrix(80, 5.0, true, 41);
  const auto x = test::random_vector(80, 42);
  const auto plan = camp_build(a, 5, 1);
  EXPECT_DOUBLE_EQ(plan.nnz_redundancy(a.nnz()), 1.0);
  AlignedVector<double> y(80), ref(80);
  camp_power<double>(a, plan, x, y);
  MpkWorkspace<double> ws;
  mpk_power<double>(a, x, 5, ref, ws);
  test::expect_near_rel(y, ref, 1e-10);
}

TEST(Camp, UnsymmetricDependencyHandled) {
  // Strictly upper bidiagonal: row i depends only on i+1 — reach must
  // follow out-edges, not the symmetrized pattern.
  CooMatrix<double> coo(20, 20);
  for (index_t i = 0; i < 20; ++i) {
    coo.add(i, i, 1.0);
    if (i + 1 < 20) coo.add(i, i + 1, 2.0);
  }
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto x = test::random_vector(20, 43);
  const auto plan = camp_build(a, 3, 5);
  AlignedVector<double> y(20), ref(20);
  camp_power<double>(a, plan, x, y);
  MpkWorkspace<double> ws;
  mpk_power<double>(a, x, 3, ref, ws);
  test::expect_near_rel(y, ref, 1e-13);
}

TEST(Camp, ParallelBlocksMatchSerialExecution) {
  set_threads(4);
  const auto a = gen::make_laplacian_3d(8, 8, 8);
  const auto x = test::random_vector(512, 44);
  const auto plan = camp_build(a, 4, 32);
  AlignedVector<double> y(512), ref(512);
  camp_power<double>(a, plan, x, y);
  set_threads(1);
  camp_power<double>(a, plan, x, ref);
  for (index_t i = 0; i < 512; ++i) ASSERT_EQ(y[i], ref[i]);
  set_threads(max_threads());
}

TEST(Camp, RejectsBadArguments) {
  const auto a = gen::make_laplacian_2d(4, 4);
  EXPECT_THROW(camp_build(a, 0, 4), Error);
  CooMatrix<double> rect(2, 3);
  rect.add(0, 0, 1.0);
  EXPECT_THROW(camp_build(CsrMatrix<double>::from_coo(rect), 2, 2), Error);
}

}  // namespace
}  // namespace fbmpk
