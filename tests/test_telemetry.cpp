// Telemetry layer tests (src/telemetry/, docs/OBSERVABILITY.md):
// registry semantics, export validity, fault injection on the export
// path, the zero-allocation runtime-off contract on the sweep hot
// path, warmup exclusion in the harness, and graceful hardware-counter
// degradation. Tests that assert hot-path instrumentation *fired* are
// gated on telemetry::compiled_in() — in an FBMPK_TELEMETRY=OFF build
// they instead assert nothing was recorded.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "core/fbmpk.hpp"
#include "gen/suite.hpp"
#include "perf/harness.hpp"
#include "support/fault_inject.hpp"
#include "support/json.hpp"
#include "telemetry/hw_counters.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"

namespace fbmpk {
namespace {

namespace fs = std::filesystem;

telemetry::Registry& reg() { return telemetry::Registry::instance(); }

/// RAII: enable the registry fresh for one test, leave it disabled and
/// empty afterwards so tests cannot leak state into each other.
struct ScopedTelemetry {
  ScopedTelemetry() {
    reg().reset();
    reg().set_enabled(true);
  }
  ~ScopedTelemetry() {
    reg().set_enabled(false);
    reg().reset();
  }
};

CsrMatrix<double> test_matrix(double scale = 0.05) {
  return gen::make_suite_matrix("shipsec1", scale).matrix;
}

// --------------------------------------------------------------------------
// JSON helpers
// --------------------------------------------------------------------------

TEST(TelemetryJson, EscapeCoversRfc8259Specials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(TelemetryJson, NumberMapsNonFiniteToNull) {
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

// --------------------------------------------------------------------------
// Registry semantics
// --------------------------------------------------------------------------

TEST(TelemetryRegistry, CountersAccumulateAndSortInSnapshot) {
  ScopedTelemetry scope;
  reg().counter_add("test.b", 2);
  reg().counter_add("test.a", 1);
  reg().counter_add("test.b", 3);
  reg().gauge_set("test.g", 42);

  const telemetry::Snapshot snap = reg().snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "test.a");
  EXPECT_EQ(snap.counters[0].second, 1);
  EXPECT_EQ(snap.counters[1].first, "test.b");
  EXPECT_EQ(snap.counters[1].second, 5);
  EXPECT_EQ(snap.counters[2].first, "test.g");
  EXPECT_EQ(snap.counters[2].second, 42);
}

TEST(TelemetryRegistry, CountersIgnoredWhenRuntimeDisabled) {
  reg().reset();
  reg().set_enabled(false);
  reg().counter_add("test.ignored", 7);
  reg().gauge_set("test.ignored_gauge", 7);
  EXPECT_TRUE(reg().snapshot().counters.empty());
}

TEST(TelemetryRegistry, SpansLandInThreadBuffer) {
  ScopedTelemetry scope;
  {
    telemetry::ScopedSpan span(telemetry::Cat::kPlan, "test.span",
                               telemetry::SpanArgs{3, 1, false, -1});
  }
  const telemetry::Snapshot snap = reg().snapshot();
  ASSERT_EQ(snap.total_events(), 1u);
  const telemetry::SpanEvent* e = nullptr;
  for (const auto& t : snap.threads)
    if (!t.events.empty()) e = &t.events[0];
  ASSERT_NE(e, nullptr);
  EXPECT_STREQ(e->name, "test.span");
  EXPECT_EQ(e->args.k, 3);
  EXPECT_EQ(e->args.color, 1);
  EXPECT_GE(e->dur_ns, 0);
}

TEST(TelemetryRegistry, ScopedSpanIsInertWhenDisabled) {
  reg().reset();
  reg().set_enabled(false);
  {
    telemetry::ScopedSpan span(telemetry::Cat::kPlan, "test.noop");
  }
  EXPECT_EQ(reg().event_count(), 0u);
}

TEST(TelemetryRegistry, ResetClearsEventsAndCounters) {
  ScopedTelemetry scope;
  reg().counter_add("test.c", 1);
  { telemetry::ScopedSpan span(telemetry::Cat::kBench, "test.s"); }
  EXPECT_GE(reg().event_count(), 1u);
  reg().reset();
  EXPECT_EQ(reg().event_count(), 0u);
  EXPECT_TRUE(reg().snapshot().counters.empty());
}

TEST(TelemetryRegistry, HistogramBucketsMergeAndAverage) {
  telemetry::Histogram a, b;
  a.add(0);
  a.add(1);
  a.add(1024);
  b.add(1 << 20);
  a.merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.max_ns, std::uint64_t{1} << 20);
  EXPECT_DOUBLE_EQ(a.mean_ns(), (0.0 + 1.0 + 1024.0 + (1 << 20)) / 4.0);
  EXPECT_EQ(a.buckets[0], 2u);   // 0 and 1
  EXPECT_EQ(a.buckets[10], 1u);  // 1024 = 2^10
  EXPECT_EQ(a.buckets[20], 1u);
}

TEST(TelemetryRegistry, HistogramAddPinsOctaveBoundaries) {
  // The bit_width-based bucket index must agree with the documented
  // octave layout [2^b, 2^(b+1)) at every boundary.
  telemetry::Histogram h;
  h.add(0);
  EXPECT_EQ(h.buckets[0], 1u);
  h.add(1);
  EXPECT_EQ(h.buckets[0], 2u);  // bucket 0 holds 0 and 1
  h.add(2);
  EXPECT_EQ(h.buckets[1], 1u);
  h.add(3);
  EXPECT_EQ(h.buckets[1], 2u);
  h.add(4);
  EXPECT_EQ(h.buckets[2], 1u);
  for (int b = 3; b < 63; ++b) {
    telemetry::Histogram hb;
    hb.add(std::uint64_t{1} << b);        // lower edge -> bucket b
    hb.add((std::uint64_t{1} << b) - 1);  // below edge -> bucket b-1
    EXPECT_EQ(hb.buckets[static_cast<std::size_t>(b)], 1u) << "b=" << b;
    EXPECT_EQ(hb.buckets[static_cast<std::size_t>(b - 1)], 1u) << "b=" << b;
  }
  telemetry::Histogram top;
  top.add(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(top.buckets[63], 1u);
  EXPECT_EQ(top.max_ns, std::numeric_limits<std::uint64_t>::max());
}

TEST(TelemetryRegistry, HistogramQuantileInterpolatesAndClamps) {
  telemetry::Histogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  // 100 samples all in bucket 10 ([1024, 2048)): every quantile lies
  // inside the octave and never exceeds the recorded max.
  telemetry::Histogram h;
  for (int i = 0; i < 100; ++i) h.add(1500);
  EXPECT_GE(h.quantile(0.0), 1024.0);
  EXPECT_GE(h.quantile(0.99), h.quantile(0.5));
  EXPECT_LE(h.quantile(1.0), 1500.0);  // clamped to max_ns
  EXPECT_LE(h.quantile(2.0), 1500.0);  // q out of range clamps too

  // Spread samples: p50 below the big outlier, p99 near it.
  telemetry::Histogram s;
  for (int i = 0; i < 99; ++i) s.add(1000);
  s.add(1 << 20);
  EXPECT_LT(s.quantile(0.5), 2048.0);
  EXPECT_GT(s.quantile(0.999), 1 << 19);
}

// --------------------------------------------------------------------------
// Hot-path instrumentation (build-flavor dependent)
// --------------------------------------------------------------------------

TEST(TelemetryHotPath, PlanAndSweepSpansMatchBuildFlavor) {
  ScopedTelemetry scope;
  const auto a = test_matrix();

  PlanOptions opts;
  opts.sweep.sync = SweepSync::kPointToPoint;
  MpkPlan plan = MpkPlan::build(a, opts);
  AlignedVector<double> x(static_cast<std::size_t>(a.rows()), 1.0);
  AlignedVector<double> y(x.size());
  plan.power(x, 5, y);

  const telemetry::Snapshot snap = reg().snapshot();
  if (!telemetry::compiled_in()) {
    // OFF build: the macros expanded to nothing, so the whole plan
    // build + engine sweep must have recorded exactly zero telemetry.
    EXPECT_EQ(snap.total_events(), 0u);
    EXPECT_TRUE(snap.counters.empty());
    return;
  }

  bool saw_build = false, saw_split = false, saw_power = false;
  bool saw_fwd = false, saw_bwd = false;
  for (const auto& t : snap.threads) {
    for (const auto& e : t.events) {
      const std::string name = e.name;
      saw_build |= name == "plan.build";
      saw_split |= name == "plan.split";
      saw_power |= name == "plan.power";
      if (name == "F") {
        saw_fwd = true;
        EXPECT_GE(e.args.color, 0);
        EXPECT_GE(e.args.k, 1);
      }
      saw_bwd |= name == "B";
    }
  }
  EXPECT_TRUE(saw_build);
  EXPECT_TRUE(saw_split);
  EXPECT_TRUE(saw_power);
  EXPECT_TRUE(saw_fwd);
  EXPECT_TRUE(saw_bwd);

  std::int64_t builds = 0;
  for (const auto& [name, v] : snap.counters)
    if (name == "plan.builds") builds = v;
  EXPECT_EQ(builds, 1);
  EXPECT_GT(snap.total_wait.stages, 0u);
}

TEST(TelemetryHotPath, RuntimeOffSweepAllocatesNothing) {
  reg().reset();
  reg().set_enabled(false);
  const auto a = test_matrix();
  PlanOptions opts;
  opts.sweep.sync = SweepSync::kPointToPoint;
  MpkPlan plan = MpkPlan::build(a, opts);
  AlignedVector<double> x(static_cast<std::size_t>(a.rows()), 1.0);
  AlignedVector<double> y(x.size());
  plan.power(x, 4, y);  // warm every lazily-created buffer

  const std::uint64_t allocs_before = reg().buffer_allocations();
  const std::size_t events_before = reg().event_count();
  const std::uint64_t flight_before = reg().flight_pushes();
  for (int r = 0; r < 3; ++r) plan.power(x, 4, y);
  EXPECT_EQ(reg().buffer_allocations(), allocs_before);
  EXPECT_EQ(reg().event_count(), events_before);
  // The flight recorder rides inside the (never-allocated) thread
  // buffers: runtime-off must not push a single ring slot either.
  EXPECT_EQ(reg().flight_pushes(), flight_before);
}

TEST(TelemetryHotPath, HarnessMarksWarmupAndExcludesItFromHistogram) {
  if (!telemetry::compiled_in())
    GTEST_SKIP() << "instrumentation compiled out (FBMPK_TELEMETRY=OFF)";
  ScopedTelemetry scope;
  perf::time_runs([] {}, /*reps=*/3, /*warmup=*/2);

  const telemetry::Snapshot snap = reg().snapshot();
  int warm = 0, measured = 0;
  for (const auto& t : snap.threads)
    for (const auto& e : t.events)
      if (std::string(e.name) == "bench.run") (e.args.warmup ? warm : measured)++;
  EXPECT_EQ(warm, 2);
  EXPECT_EQ(measured, 3);
  // The kBenchRun histogram sees only the measured iterations.
  const auto& h =
      snap.merged[static_cast<std::size_t>(telemetry::Hist::kBenchRun)];
  EXPECT_EQ(h.count, 3u);
}

// --------------------------------------------------------------------------
// Export: structure and fault injection
// --------------------------------------------------------------------------

telemetry::Snapshot small_snapshot() {
  ScopedTelemetry scope;
  reg().counter_add("test.counter", 9);
  {
    telemetry::ScopedSpan span(telemetry::Cat::kSweep, "F",
                               telemetry::SpanArgs{1, 2, false, -1});
  }
  reg().thread_buffer().record(telemetry::Hist::kSweepStage, 512);
  return reg().snapshot();
}

TEST(TelemetryExport, TraceCarriesEventsAndVersionedMetrics) {
  const telemetry::Snapshot snap = small_snapshot();
  std::ostringstream os;
  const Status st = telemetry::write_trace(os, snap);
  ASSERT_TRUE(st.ok());
  const std::string out = os.str();

  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"fbmpkMetrics\""), std::string::npos);
  EXPECT_NE(out.find("\"schema_version\": 6"), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"F\""), std::string::npos);
  EXPECT_NE(out.find("\"color\": 2"), std::string::npos);
  EXPECT_NE(out.find("\"test.counter\": 9"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser
  // (CI additionally json.load()s a CLI-produced trace).
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
}

TEST(TelemetryExport, RequestContextEmitsReqArgAndFlowEvents) {
  // Two spans tagged with the same request id must export the "req"
  // arg and a flow chain stitching them ("s" start, "f" end with
  // bp=e); a lone-span request gets the arg but no flow events.
  telemetry::Snapshot snap;
  {
    ScopedTelemetry scope;
    {
      telemetry::ScopedSpan a(telemetry::Cat::kService, "service.submit",
                              telemetry::SpanArgs{2, -1, false, -1, 7});
    }
    {
      telemetry::ScopedSpan b(telemetry::Cat::kService, "service.request",
                              telemetry::SpanArgs{2, -1, false, -1, 7});
    }
    {
      telemetry::ScopedSpan lone(telemetry::Cat::kService, "service.submit",
                                 telemetry::SpanArgs{2, -1, false, -1, 9});
    }
    snap = reg().snapshot();
  }
  std::ostringstream os;
  ASSERT_TRUE(telemetry::write_trace(os, snap).ok());
  const std::string out = os.str();
  EXPECT_NE(out.find("\"req\": 7"), std::string::npos);
  EXPECT_NE(out.find("\"req\": 9"), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"s\", \"id\": 7"), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"f\", \"id\": 7"), std::string::npos);
  EXPECT_NE(out.find("\"bp\": \"e\""), std::string::npos);
  // req 9 had a single span: no flow events for it.
  EXPECT_EQ(out.find("\"ph\": \"s\", \"id\": 9"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
}

TEST(TelemetryExport, HwAndTrafficSectionsExportWhenPresent) {
  const telemetry::Snapshot snap = small_snapshot();
  telemetry::ExportMeta meta;
  meta.has_hw = true;
  meta.hw_avail.task_clock = true;
  meta.hw_avail.detail = "test";
  meta.hw.task_clock_ns = 1000;
  meta.has_traffic = true;
  meta.traffic.modeled_bytes = 100.0;
  meta.traffic.measured_bytes = 110.0;
  meta.traffic.k = 5;

  std::ostringstream os;
  ASSERT_TRUE(telemetry::write_trace(os, snap, meta).ok());
  const std::string out = os.str();
  EXPECT_NE(out.find("\"hw\""), std::string::npos);
  EXPECT_NE(out.find("\"task_clock_ns\": 1000"), std::string::npos);
  EXPECT_NE(out.find("\"traffic\""), std::string::npos);
  EXPECT_NE(out.find("\"modeled_bytes\": 100"), std::string::npos);
  // deviation = |110 - 100| / 100
  EXPECT_NE(out.find("\"deviation\": 0.1"), std::string::npos);
}

TEST(TelemetryExport, WriteFaultReturnsTypedIoStatus) {
  const telemetry::Snapshot snap = small_snapshot();
  // Accept ever-larger prefixes; every truncation point must produce a
  // typed kIo status, never a throw.
  for (std::size_t limit : {std::size_t{0}, std::size_t{1}, std::size_t{64},
                            std::size_t{512}}) {
    FailingWriteStream os(limit);
    Status st = Status();
    EXPECT_NO_THROW(st = telemetry::write_trace(os, snap));
    EXPECT_FALSE(st.ok()) << "limit=" << limit;
    EXPECT_EQ(st.code(), ErrorCode::kIo);
  }
}

TEST(TelemetryExport, UnwritablePathReturnsIoAndLeavesNoDroppings) {
  const telemetry::Snapshot snap = small_snapshot();
  const std::string path = "/nonexistent_fbmpk_dir/trace.json";
  Status st = Status();
  EXPECT_NO_THROW(st = telemetry::export_trace_file(path, snap));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kIo);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(TelemetryExport, RenameFailureLeavesExistingTargetIntact) {
  const telemetry::Snapshot snap = small_snapshot();
  // A directory at the target path makes the final rename fail after
  // the tmp write succeeded — the pre-existing "artifact" must survive
  // and the tmp file must be cleaned up.
  const fs::path dir = fs::temp_directory_path() / "fbmpk_trace_target";
  fs::create_directories(dir / "keep");
  Status st = Status();
  EXPECT_NO_THROW(st = telemetry::export_trace_file(dir.string(), snap));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kIo);
  EXPECT_TRUE(fs::is_directory(dir));
  EXPECT_TRUE(fs::exists(dir / "keep"));
  EXPECT_FALSE(fs::exists(dir.string() + ".tmp"));
  fs::remove_all(dir);
}

TEST(TelemetryExport, FileRoundTripProducesLoadableTrace) {
  const telemetry::Snapshot snap = small_snapshot();
  const fs::path path = fs::temp_directory_path() / "fbmpk_trace_ok.json";
  const Status st = telemetry::export_trace_file(path.string(), snap);
  ASSERT_TRUE(st.ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
  fs::remove(path);
}

// --------------------------------------------------------------------------
// Hardware counters: graceful degradation
// --------------------------------------------------------------------------

TEST(TelemetryHw, GroupConstructsAndReportsAvailabilityEverywhere) {
  // Must never throw, whatever the kernel/permission situation is. In
  // locked-down containers every event can be unavailable — that is a
  // valid, reportable outcome, not an error.
  telemetry::HwCounterGroup group;
  const telemetry::HwAvailability& avail = group.availability();
  EXPECT_FALSE(avail.detail.empty());
  if (group.available()) {
    group.start();
    const telemetry::HwCounts counts = group.stop();
    if (avail.task_clock) {
      EXPECT_GE(counts.task_clock_ns, 0);
    }
    if (avail.cycles) {
      EXPECT_GE(counts.cycles, 0);
    }
    if (!avail.traffic()) {
      EXPECT_LT(counts.memory_bytes(), 0);
    }
  }
}

TEST(TelemetryHw, TrafficDeviationIsSignedRelativeError) {
  EXPECT_DOUBLE_EQ(telemetry::traffic_deviation(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(telemetry::traffic_deviation(90.0, 100.0), -0.1);
  EXPECT_DOUBLE_EQ(telemetry::traffic_deviation(0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace fbmpk
