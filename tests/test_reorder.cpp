// Unit tests for src/reorder: permutations, graphs, RCM, blocking,
// coloring and ABMC.
#include <gtest/gtest.h>

#include "gen/stencil.hpp"
#include "reorder/abmc.hpp"
#include "reorder/blocking.hpp"
#include "reorder/coloring.hpp"
#include "reorder/graph.hpp"
#include "reorder/permutation.hpp"
#include "reorder/rcm.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

AdjacencyGraph path_graph(index_t n) {
  CooMatrix<double> coo(n, n);
  for (index_t i = 0; i + 1 < n; ++i) {
    coo.add(i, i + 1, 1.0);
    coo.add(i + 1, i, 1.0);
  }
  return adjacency_from_matrix(CsrMatrix<double>::from_coo(coo));
}

TEST(Permutation, IdentityActsTrivially) {
  const auto p = Permutation::identity(5);
  EXPECT_TRUE(p.is_identity());
  const auto a = test::random_matrix(5, 3.0, false, 1);
  EXPECT_EQ(permute_symmetric(a, p), a);
}

TEST(Permutation, RejectsInvalidOrders) {
  EXPECT_THROW(Permutation({0, 0, 1}), Error);  // duplicate
  EXPECT_THROW(Permutation({0, 3, 1}), Error);  // out of range
}

TEST(Permutation, InverseComposesToIdentity) {
  const Permutation p({2, 0, 3, 1});
  const auto inv = p.inverse();
  for (index_t i = 0; i < p.size(); ++i) EXPECT_EQ(inv[p.old_of(i)], i);
}

TEST(Permutation, VectorRoundTrip) {
  const Permutation p({2, 0, 3, 1});
  const std::vector<double> x{10, 20, 30, 40};
  std::vector<double> fwd(4), back(4);
  permute_vector<double>(p, x, fwd);
  EXPECT_EQ(fwd, (std::vector<double>{30, 10, 40, 20}));
  unpermute_vector<double>(p, fwd, back);
  EXPECT_EQ(back, x);
}

TEST(Permutation, SymmetricPermutePreservesSpectrumAction) {
  // (PAP^T)(Px) == P(Ax): check via dense arithmetic.
  const auto a = test::random_matrix(30, 4.0, false, 11);
  const auto p = rcm_order(a);
  const auto b = permute_symmetric(a, p);
  const auto x = test::random_vector(30, 5);
  std::vector<double> ax(30), px(30), bpx(30), pax(30);
  const auto ad = to_dense(a);
  const auto bd = to_dense(b);
  for (index_t i = 0; i < 30; ++i) {
    double s1 = 0;
    for (index_t j = 0; j < 30; ++j) s1 += ad[i * 30 + j] * x[j];
    ax[i] = s1;
  }
  permute_vector<double>(p, x, px);
  for (index_t i = 0; i < 30; ++i) {
    double s2 = 0;
    for (index_t j = 0; j < 30; ++j) s2 += bd[i * 30 + j] * px[j];
    bpx[i] = s2;
  }
  permute_vector<double>(p, ax, pax);
  test::expect_near_rel(bpx, pax, 1e-12);
}

TEST(Permutation, ComposeAppliesRightFirst) {
  const Permutation p({1, 2, 0});
  const Permutation q({2, 0, 1});
  const auto r = p.compose(q);
  // r.order[i] = q.order[p.order[i]]
  EXPECT_EQ(r.old_of(0), q.old_of(1));
}

TEST(Graph, AdjacencySymmetrizesPattern) {
  CooMatrix<double> coo(3, 3);
  coo.add(0, 1, 1.0);  // only one direction stored
  coo.add(2, 2, 1.0);  // self loop must be dropped
  const auto g =
      adjacency_from_matrix(CsrMatrix<double>::from_coo(coo));
  g.validate();
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(Graph, NoDuplicateEdges) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 2.0);  // both directions stored -> one undirected edge
  const auto g = adjacency_from_matrix(CsrMatrix<double>::from_coo(coo));
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Graph, QuotientCollapsesBlocks) {
  const auto g = path_graph(6);
  // Blocks {0,1}, {2,3}, {4,5}: quotient is a path of 3 blocks.
  const std::vector<index_t> block_of{0, 0, 1, 1, 2, 2};
  const auto q = quotient_graph(g, block_of, 3);
  q.validate();
  EXPECT_EQ(q.degree(0), 1);
  EXPECT_EQ(q.degree(1), 2);
  EXPECT_EQ(q.degree(2), 1);
}

TEST(Rcm, ReducesBandwidthOfShuffledGrid) {
  const auto grid = gen::make_laplacian_2d(20, 20);
  // Shuffle with a deterministic permutation to destroy locality.
  std::vector<index_t> shuffled(400);
  std::iota(shuffled.begin(), shuffled.end(), 0);
  Rng rng(77);
  for (std::size_t i = shuffled.size(); i > 1; --i)
    std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
  const auto scrambled = permute_symmetric(grid, Permutation(shuffled));
  const auto restored = permute_symmetric(scrambled, rcm_order(scrambled));
  EXPECT_LT(bandwidth(restored), bandwidth(scrambled) / 4);
}

TEST(Rcm, HandlesDisconnectedComponents) {
  CooMatrix<double> coo(6, 6);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(3, 4, 1.0);
  coo.add(4, 3, 1.0);  // vertices 2 and 5 isolated
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto p = rcm_order(a);
  EXPECT_EQ(p.size(), 6);  // valid permutation covering all vertices
}

TEST(Rcm, PseudoPeripheralOnPathIsEndpoint) {
  const auto g = path_graph(9);
  const index_t v = pseudo_peripheral_vertex(g, 4);
  EXPECT_TRUE(v == 0 || v == 8);
}

TEST(Blocking, ContiguousBalancedSizes) {
  AdjacencyGraph empty;
  const auto b = build_blocking(empty, 10, 3, BlockingStrategy::kContiguous);
  EXPECT_TRUE(is_valid_blocking(b, 10));
  EXPECT_EQ(b.num_blocks, 3);
  EXPECT_EQ(b.block_size(0), 4);
  EXPECT_EQ(b.block_size(1), 3);
  EXPECT_EQ(b.block_size(2), 3);
}

TEST(Blocking, ClampsBlockCount) {
  AdjacencyGraph empty;
  const auto b = build_blocking(empty, 5, 100, BlockingStrategy::kContiguous);
  EXPECT_EQ(b.num_blocks, 5);
  EXPECT_TRUE(is_valid_blocking(b, 5));
}

TEST(Blocking, BfsCoversAllRowsOnce) {
  const auto a = gen::make_laplacian_2d(15, 15);
  const auto g = adjacency_from_matrix(a);
  const auto b = build_blocking(g, g.n, 16, BlockingStrategy::kBfs);
  EXPECT_TRUE(is_valid_blocking(b, g.n));
}

TEST(Blocking, BfsGroupsConnectedRows) {
  // On a path graph, BFS blocking must yield contiguous runs.
  const auto g = path_graph(12);
  const auto b = build_blocking(g, 12, 4, BlockingStrategy::kBfs);
  for (index_t blk = 0; blk < 4; ++blk)
    for (index_t k = b.block_ptr[blk] + 1; k < b.block_ptr[blk + 1]; ++k)
      EXPECT_EQ(b.row_order[k], b.row_order[k - 1] + 1);
}

TEST(Coloring, PathNeedsTwoColors) {
  const auto g = path_graph(10);
  const auto c = greedy_color(g);
  EXPECT_EQ(c.num_colors, 2);
  EXPECT_TRUE(is_valid_coloring(g, c));
}

TEST(Coloring, CompleteGraphNeedsNColors) {
  CooMatrix<double> coo(5, 5);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 5; ++j)
      if (i != j) coo.add(i, j, 1.0);
  const auto g = adjacency_from_matrix(CsrMatrix<double>::from_coo(coo));
  const auto c = greedy_color(g);
  EXPECT_EQ(c.num_colors, 5);
  EXPECT_TRUE(is_valid_coloring(g, c));
}

TEST(Coloring, AllOrdersProduceValidColorings) {
  const auto a = test::random_matrix(200, 6.0, true, 13);
  const auto g = adjacency_from_matrix(a);
  for (auto order : {ColoringOrder::kNatural, ColoringOrder::kLargestDegreeFirst,
                     ColoringOrder::kSmallestLast}) {
    const auto c = greedy_color(g, order);
    EXPECT_TRUE(is_valid_coloring(g, c));
    EXPECT_GE(c.num_colors, 2);
  }
}

TEST(Coloring, IsolatedVerticesShareColorZero) {
  AdjacencyGraph g;
  g.n = 4;
  g.ptr = {0, 0, 0, 0, 0};
  const auto c = greedy_color(g);
  EXPECT_EQ(c.num_colors, 1);
  for (auto col : c.color_of) EXPECT_EQ(col, 0);
}

class AbmcParamTest
    : public ::testing::TestWithParam<std::tuple<index_t, BlockingStrategy>> {
};

TEST_P(AbmcParamTest, ScheduleIsValidOnGrid) {
  const auto [blocks, strategy] = GetParam();
  const auto a = gen::make_laplacian_2d(24, 24);
  AbmcOptions opts;
  opts.num_blocks = blocks;
  opts.blocking = strategy;
  const auto o = abmc_order(a, opts);
  EXPECT_EQ(o.perm.size(), a.rows());
  EXPECT_EQ(o.block_ptr.size(), static_cast<std::size_t>(o.num_blocks) + 1);
  EXPECT_EQ(o.color_ptr.size(), static_cast<std::size_t>(o.num_colors) + 1);
  const auto permuted = permute_symmetric(a, o.perm);
  EXPECT_TRUE(is_valid_schedule(permuted, o));
}

INSTANTIATE_TEST_SUITE_P(
    BlockCountsAndStrategies, AbmcParamTest,
    ::testing::Combine(::testing::Values<index_t>(4, 16, 64, 576),
                       ::testing::Values(BlockingStrategy::kContiguous,
                                         BlockingStrategy::kBfs)));

TEST(Abmc, ColorsPartitionBlocks) {
  const auto a = test::random_matrix(500, 8.0, true, 31);
  AbmcOptions opts;
  opts.num_blocks = 32;
  const auto o = abmc_order(a, opts);
  EXPECT_EQ(o.color_ptr.front(), 0);
  EXPECT_EQ(o.color_ptr.back(), o.num_blocks);
  for (index_t c = 0; c < o.num_colors; ++c)
    EXPECT_LT(o.color_ptr[c], o.color_ptr[c + 1]);  // no empty colors
}

TEST(Abmc, WorksOnUnsymmetricMatrices) {
  const auto a = test::random_matrix(300, 6.0, false, 41);
  AbmcOptions opts;
  opts.num_blocks = 16;
  const auto o = abmc_order(a, opts);
  const auto permuted = permute_symmetric(a, o.perm);
  EXPECT_TRUE(is_valid_schedule(permuted, o));
}

TEST(Abmc, SingleBlockGetsOneColor) {
  const auto a = gen::make_laplacian_2d(5, 5);
  AbmcOptions opts;
  opts.num_blocks = 1;
  const auto o = abmc_order(a, opts);
  EXPECT_EQ(o.num_colors, 1);
  EXPECT_EQ(o.num_blocks, 1);
}

TEST(Abmc, InvalidScheduleIsDetected) {
  // A deliberately broken schedule: same color for adjacent blocks.
  const auto a = gen::make_laplacian_2d(4, 4);
  AbmcOptions opts;
  opts.num_blocks = 4;
  auto o = abmc_order(a, opts);
  // Force everything into one color: invalid unless there is 1 block.
  o.num_colors = 1;
  o.color_ptr = {0, o.num_blocks};
  const auto permuted = permute_symmetric(a, o.perm);
  EXPECT_FALSE(is_valid_schedule(permuted, o));
}

}  // namespace
}  // namespace fbmpk
