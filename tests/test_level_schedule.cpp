// Tests for level scheduling (paper §VII alternative parallelization):
// schedule construction, validity, and bitwise agreement of the
// level-scheduled FBMPK kernel with the serial kernel.
#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "gen/stencil.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/fbmpk_level.hpp"
#include "kernels/mpk_baseline.hpp"
#include "reorder/level_schedule.hpp"
#include "sparse/split.hpp"
#include "support/threading.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

TEST(LevelSchedule, ChainMatrixHasOneLevelPerRow) {
  // Bidiagonal chain: row i depends on i-1, so n forward levels.
  CooMatrix<double> coo(6, 6);
  for (index_t i = 0; i < 6; ++i) {
    coo.add(i, i, 2.0);
    if (i > 0) coo.add(i, i - 1, -1.0);
  }
  const auto s = split_triangular(CsrMatrix<double>::from_coo(coo));
  const auto fwd = forward_levels(s.lower);
  EXPECT_EQ(fwd.num_levels, 6);
  EXPECT_TRUE(is_valid_level_schedule(s.lower, fwd, false));
  // Upper triangle empty: everything is level 0 backward.
  const auto bwd = backward_levels(s.upper);
  EXPECT_EQ(bwd.num_levels, 1);
}

TEST(LevelSchedule, DiagonalMatrixIsOneLevel) {
  CooMatrix<double> coo(5, 5);
  for (index_t i = 0; i < 5; ++i) coo.add(i, i, 1.0);
  const auto s = split_triangular(CsrMatrix<double>::from_coo(coo));
  EXPECT_EQ(forward_levels(s.lower).num_levels, 1);
  EXPECT_EQ(backward_levels(s.upper).num_levels, 1);
}

TEST(LevelSchedule, ValidOnRandomAndGridMatrices) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto a = test::random_matrix(300, 7.0, seed % 2 == 0, seed);
    const auto s = split_triangular(a);
    const auto fwd = forward_levels(s.lower);
    const auto bwd = backward_levels(s.upper);
    EXPECT_TRUE(is_valid_level_schedule(s.lower, fwd, false)) << seed;
    EXPECT_TRUE(is_valid_level_schedule(s.upper, bwd, true)) << seed;
  }
  const auto g = gen::make_laplacian_2d(20, 20);
  const auto s = split_triangular(g);
  EXPECT_TRUE(is_valid_level_schedule(s.lower, forward_levels(s.lower),
                                      false));
}

TEST(LevelSchedule, ForwardAndBackwardLevelCountsMirrorOnSymmetric) {
  const auto a = test::random_matrix(200, 6.0, true, 9);
  const auto s = split_triangular(a);
  // For a symmetric pattern U = L^T, so the dependency DAGs are mirror
  // images and the level counts coincide.
  EXPECT_EQ(forward_levels(s.lower).num_levels,
            backward_levels(s.upper).num_levels);
}

TEST(LevelSchedule, DetectsInvalidSchedules) {
  const auto a = test::random_matrix(50, 5.0, true, 11);
  const auto s = split_triangular(a);
  auto fwd = forward_levels(s.lower);
  // Collapse everything into one level: invalid unless L is empty.
  LevelSchedule broken;
  broken.num_levels = 1;
  broken.level_ptr = {0, a.rows()};
  broken.rows = fwd.rows;
  EXPECT_FALSE(is_valid_level_schedule(s.lower, broken, false));
}

class LevelKernelTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(LevelKernelTest, BitwiseEqualsSerial) {
  const auto [k, threads] = GetParam();
  set_threads(threads);
  const auto a = test::random_matrix(350, 8.0, false, 77);
  const auto s = split_triangular(a);
  const auto sched = LevelSchedulePair::of(s);
  const auto x = test::random_vector(350, 78);

  AlignedVector<double> y_lvl(350), y_ser(350);
  FbWorkspace<double> wl, ws;
  fbmpk_level_power<double>(s, sched, x, k, y_lvl, wl);
  fbmpk_power<double>(s, x, k, y_ser, ws);
  for (index_t i = 0; i < 350; ++i)
    ASSERT_EQ(y_lvl[i], y_ser[i]) << "row " << i << " k=" << k;
  set_threads(max_threads());
}

INSTANTIATE_TEST_SUITE_P(
    PowersAndThreads, LevelKernelTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values(1, 4)));

TEST(LevelKernel, PlanWithLevelSchedulerNoReorder) {
  const auto a = gen::make_laplacian_3d(12, 12, 12);
  PlanOptions opts;
  opts.reorder = false;
  opts.parallel = true;
  opts.scheduler = Scheduler::kLevels;
  auto plan = MpkPlan::build(a, opts);
  EXPECT_TRUE(plan.permutation().is_identity());
  EXPECT_GT(plan.stats().num_levels_forward, 1);
  EXPECT_GT(plan.stats().num_levels_backward, 1);

  const auto x = test::random_vector(a.rows(), 5);
  AlignedVector<double> y(a.rows()), ref(a.rows());
  plan.power(x, 5, y);
  MpkWorkspace<double> mws;
  mpk_power<double>(a, x, 5, ref, mws);
  test::expect_near_rel(y, ref, 1e-9);
}

TEST(LevelKernel, PlanLevelsWithReorderAlsoWorks) {
  const auto a = test::random_matrix(250, 6.0, true, 13);
  PlanOptions opts;
  opts.reorder = true;
  opts.parallel = true;
  opts.scheduler = Scheduler::kLevels;
  auto plan = MpkPlan::build(a, opts);
  const auto x = test::random_vector(a.rows(), 14);
  AlignedVector<double> y(a.rows()), ref(a.rows());
  plan.power(x, 4, y);
  MpkWorkspace<double> mws;
  mpk_power<double>(a, x, 4, ref, mws);
  test::expect_near_rel(y, ref, 1e-9);
}

TEST(LevelKernel, PlanPowerAllAndPolynomial) {
  const auto a = test::random_matrix(150, 5.0, true, 15);
  PlanOptions opts;
  opts.reorder = false;
  opts.parallel = true;
  opts.scheduler = Scheduler::kLevels;
  auto plan = MpkPlan::build(a, opts);
  const auto x = test::random_vector(150, 16);

  const int k = 4;
  AlignedVector<double> basis(150 * (k + 1));
  plan.power_all(x, k, basis);
  for (int p = 0; p <= k; ++p) {
    const auto ref = test::dense_power_reference(a, x, p);
    test::expect_near_rel(
        std::span<const double>(basis).subspan(150 * p, 150), ref, 1e-8);
  }

  const AlignedVector<double> coeffs{1.0, -0.5, 0.25};
  AlignedVector<double> y(150), ref(150);
  plan.polynomial(coeffs, x, y);
  MpkWorkspace<double> mws;
  mpk_polynomial<double>(a, coeffs, x, ref, mws);
  test::expect_near_rel(y, ref, 1e-9);
}

TEST(LevelKernel, GridLevelsAreFarFewerThanRows) {
  // Grid matrices have wide wavefronts: level count ~ grid diameter,
  // much smaller than n — the property that makes the schedule useful.
  const auto a = gen::make_laplacian_2d(30, 30);
  const auto s = split_triangular(a);
  const auto fwd = forward_levels(s.lower);
  EXPECT_LT(fwd.num_levels, a.rows() / 4);
  EXPECT_GE(fwd.num_levels, 30);  // at least the grid diameter
}

}  // namespace
}  // namespace fbmpk
