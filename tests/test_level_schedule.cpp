// Tests for level scheduling (paper §VII alternative parallelization):
// schedule construction, validity, and bitwise agreement of the
// level-scheduled FBMPK kernel with the serial kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/plan.hpp"
#include "gen/stencil.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/fbmpk_level.hpp"
#include "kernels/fbmpk_level_engine.hpp"
#include "kernels/mpk_baseline.hpp"
#include "reorder/level_blocking.hpp"
#include "reorder/level_schedule.hpp"
#include "sparse/split.hpp"
#include "support/threading.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

TEST(LevelSchedule, ChainMatrixHasOneLevelPerRow) {
  // Bidiagonal chain: row i depends on i-1, so n forward levels.
  CooMatrix<double> coo(6, 6);
  for (index_t i = 0; i < 6; ++i) {
    coo.add(i, i, 2.0);
    if (i > 0) coo.add(i, i - 1, -1.0);
  }
  const auto s = split_triangular(CsrMatrix<double>::from_coo(coo));
  const auto fwd = forward_levels(s.lower);
  EXPECT_EQ(fwd.num_levels, 6);
  EXPECT_TRUE(is_valid_level_schedule(s.lower, fwd, false));
  // Upper triangle empty: everything is level 0 backward.
  const auto bwd = backward_levels(s.upper);
  EXPECT_EQ(bwd.num_levels, 1);
}

TEST(LevelSchedule, DiagonalMatrixIsOneLevel) {
  CooMatrix<double> coo(5, 5);
  for (index_t i = 0; i < 5; ++i) coo.add(i, i, 1.0);
  const auto s = split_triangular(CsrMatrix<double>::from_coo(coo));
  EXPECT_EQ(forward_levels(s.lower).num_levels, 1);
  EXPECT_EQ(backward_levels(s.upper).num_levels, 1);
}

TEST(LevelSchedule, ValidOnRandomAndGridMatrices) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto a = test::random_matrix(300, 7.0, seed % 2 == 0, seed);
    const auto s = split_triangular(a);
    const auto fwd = forward_levels(s.lower);
    const auto bwd = backward_levels(s.upper);
    EXPECT_TRUE(is_valid_level_schedule(s.lower, fwd, false)) << seed;
    EXPECT_TRUE(is_valid_level_schedule(s.upper, bwd, true)) << seed;
  }
  const auto g = gen::make_laplacian_2d(20, 20);
  const auto s = split_triangular(g);
  EXPECT_TRUE(is_valid_level_schedule(s.lower, forward_levels(s.lower),
                                      false));
}

TEST(LevelSchedule, ForwardAndBackwardLevelCountsMirrorOnSymmetric) {
  const auto a = test::random_matrix(200, 6.0, true, 9);
  const auto s = split_triangular(a);
  // For a symmetric pattern U = L^T, so the dependency DAGs are mirror
  // images and the level counts coincide.
  EXPECT_EQ(forward_levels(s.lower).num_levels,
            backward_levels(s.upper).num_levels);
}

TEST(LevelSchedule, DetectsInvalidSchedules) {
  const auto a = test::random_matrix(50, 5.0, true, 11);
  const auto s = split_triangular(a);
  auto fwd = forward_levels(s.lower);
  // Collapse everything into one level: invalid unless L is empty.
  LevelSchedule broken;
  broken.num_levels = 1;
  broken.level_ptr = {0, a.rows()};
  broken.rows = fwd.rows;
  EXPECT_FALSE(is_valid_level_schedule(s.lower, broken, false));
}

class LevelKernelTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(LevelKernelTest, BitwiseEqualsSerial) {
  const auto [k, threads] = GetParam();
  set_threads(threads);
  const auto a = test::random_matrix(350, 8.0, false, 77);
  const auto s = split_triangular(a);
  const auto sched = LevelSchedulePair::of(s);
  const auto x = test::random_vector(350, 78);

  AlignedVector<double> y_lvl(350), y_ser(350);
  FbWorkspace<double> wl, ws;
  fbmpk_level_power<double>(s, sched, x, k, y_lvl, wl);
  fbmpk_power<double>(s, x, k, y_ser, ws);
  for (index_t i = 0; i < 350; ++i)
    ASSERT_EQ(y_lvl[i], y_ser[i]) << "row " << i << " k=" << k;
  set_threads(max_threads());
}

INSTANTIATE_TEST_SUITE_P(
    PowersAndThreads, LevelKernelTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values(1, 4)));

TEST(LevelKernel, PlanWithLevelSchedulerNoReorder) {
  const auto a = gen::make_laplacian_3d(12, 12, 12);
  PlanOptions opts;
  opts.reorder = false;
  opts.parallel = true;
  opts.scheduler = Scheduler::kLevels;
  auto plan = MpkPlan::build(a, opts);
  EXPECT_TRUE(plan.permutation().is_identity());
  EXPECT_GT(plan.stats().num_levels_forward, 1);
  EXPECT_GT(plan.stats().num_levels_backward, 1);

  const auto x = test::random_vector(a.rows(), 5);
  AlignedVector<double> y(a.rows()), ref(a.rows());
  plan.power(x, 5, y);
  MpkWorkspace<double> mws;
  mpk_power<double>(a, x, 5, ref, mws);
  test::expect_near_rel(y, ref, 1e-9);
}

TEST(LevelKernel, PlanLevelsWithReorderAlsoWorks) {
  const auto a = test::random_matrix(250, 6.0, true, 13);
  PlanOptions opts;
  opts.reorder = true;
  opts.parallel = true;
  opts.scheduler = Scheduler::kLevels;
  auto plan = MpkPlan::build(a, opts);
  const auto x = test::random_vector(a.rows(), 14);
  AlignedVector<double> y(a.rows()), ref(a.rows());
  plan.power(x, 4, y);
  MpkWorkspace<double> mws;
  mpk_power<double>(a, x, 4, ref, mws);
  test::expect_near_rel(y, ref, 1e-9);
}

TEST(LevelKernel, PlanPowerAllAndPolynomial) {
  const auto a = test::random_matrix(150, 5.0, true, 15);
  PlanOptions opts;
  opts.reorder = false;
  opts.parallel = true;
  opts.scheduler = Scheduler::kLevels;
  auto plan = MpkPlan::build(a, opts);
  const auto x = test::random_vector(150, 16);

  const int k = 4;
  AlignedVector<double> basis(150 * (k + 1));
  plan.power_all(x, k, basis);
  for (int p = 0; p <= k; ++p) {
    const auto ref = test::dense_power_reference(a, x, p);
    test::expect_near_rel(
        std::span<const double>(basis).subspan(150 * p, 150), ref, 1e-8);
  }

  const AlignedVector<double> coeffs{1.0, -0.5, 0.25};
  AlignedVector<double> y(150), ref(150);
  plan.polynomial(coeffs, x, y);
  MpkWorkspace<double> mws;
  mpk_polynomial<double>(a, coeffs, x, ref, mws);
  test::expect_near_rel(y, ref, 1e-9);
}

// ---------------------------------------------------------------------
// Level blocking (reorder/level_blocking): structural invariants of the
// aggregated point-to-point schedule the level engine consumes.

/// Every row appears in exactly one (thread, stage) slot of `dir`.
void expect_partition_covers(const LevelBlockDirection& dir, index_t threads,
                             index_t n) {
  std::vector<index_t> seen(dir.part_rows.begin(), dir.part_rows.end());
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(n));
  std::sort(seen.begin(), seen.end());
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(seen[i], i);
  ASSERT_EQ(dir.part_ptr.size(),
            static_cast<std::size_t>(threads) * dir.num_stages + 1);
}

/// The blocking invariant, asserted from first principles: inside one
/// stage every dependency edge is intra-thread and producer-first.
void expect_no_intra_stage_forward_dependency(
    const LevelBlockDirection& dir, index_t threads,
    const CsrMatrix<double>& tri, bool upper) {
  const index_t n = tri.rows();
  std::vector<index_t> owner_thread(n, -1), owner_stage(n, -1),
      pos(n, -1);
  for (index_t t = 0; t < threads; ++t)
    for (index_t s = 0; s < dir.num_stages; ++s) {
      const auto slot = dir.slot(t, s);
      for (index_t r = dir.part_ptr[slot]; r < dir.part_ptr[slot + 1]; ++r) {
        const index_t row = dir.part_rows[r];
        owner_thread[row] = t;
        owner_stage[row] = s;
        pos[row] = r;
      }
    }
  for (index_t i = 0; i < n; ++i) {
    for (index_t e = tri.row_ptr()[i]; e < tri.row_ptr()[i + 1]; ++e) {
      const index_t j = tri.col_idx()[e];
      // The sweep computes row i after its dependency j (j < i forward
      // over L; j > i backward over U — both are "j first").
      ASSERT_TRUE(upper ? j > i : j < i);
      if (owner_stage[i] != owner_stage[j]) continue;
      ASSERT_EQ(owner_thread[i], owner_thread[j])
          << "cross-thread edge inside stage " << owner_stage[i] << ": row "
          << i << " depends on " << j;
      ASSERT_LT(pos[j], pos[i])
          << "consumer " << i << " stored before producer " << j;
    }
  }
}

TEST(LevelBlocking, ScheduleStructurallyValidAcrossThreadCounts) {
  const CsrMatrix<double> mats[] = {
      test::random_matrix(300, 7.0, true, 21),
      test::random_matrix(260, 6.0, false, 22),
      gen::make_laplacian_2d(18, 18),
  };
  for (const auto& a : mats) {
    const auto s = split_triangular(a);
    const auto levels = LevelSchedulePair::of(s);
    for (index_t threads : {1, 2, 4, 7}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const auto sched = build_level_sweep_schedule(levels, s, threads);
      ASSERT_EQ(sched.num_threads, threads);
      EXPECT_TRUE(validate_level_sweep_schedule(sched, s));
      expect_partition_covers(sched.fwd, threads, a.rows());
      expect_partition_covers(sched.bwd, threads, a.rows());
      expect_no_intra_stage_forward_dependency(sched.fwd, threads, s.lower,
                                               false);
      expect_no_intra_stage_forward_dependency(sched.bwd, threads, s.upper,
                                               true);
      // Aggregation only merges: stage count never exceeds level count.
      EXPECT_LE(sched.fwd.num_stages, levels.forward.num_levels);
      EXPECT_LE(sched.bwd.num_stages, levels.backward.num_levels);
    }
  }
}

TEST(LevelBlocking, AggregationMergesLevelsUnderSmallBudgets) {
  // On a connected graph any multi-level stage is one connected
  // component, so with T >= 2 the balance predicate correctly keeps
  // stages at single levels; with one thread the component constraint
  // vanishes and a large budget must collapse many levels per stage.
  const auto a = gen::make_laplacian_2d(24, 24);
  const auto s = split_triangular(a);
  const auto levels = LevelSchedulePair::of(s);
  LevelBlockingOptions big;
  big.stage_bytes = 64u << 20;
  const auto merged = build_level_sweep_schedule(levels, s, 1, big);
  EXPECT_TRUE(validate_level_sweep_schedule(merged, s));
  EXPECT_LT(merged.fwd.num_stages, levels.forward.num_levels / 2);

  const auto two = build_level_sweep_schedule(levels, s, 2, big);
  EXPECT_TRUE(validate_level_sweep_schedule(two, s));
}

TEST(LevelBlocking, ValidatorRejectsCorruptedSchedules) {
  const auto a = test::random_matrix(200, 7.0, true, 31);
  const auto s = split_triangular(a);
  const auto levels = LevelSchedulePair::of(s);
  const auto good = build_level_sweep_schedule(levels, s, 4);
  ASSERT_TRUE(validate_level_sweep_schedule(good, s));

  {  // duplicated row: partition no longer covers each row once
    auto bad = good;
    ASSERT_GE(bad.fwd.part_rows.size(), 2u);
    bad.fwd.part_rows[0] = bad.fwd.part_rows[1];
    EXPECT_FALSE(validate_level_sweep_schedule(bad, s));
  }
  {  // truncated stage map
    auto bad = good;
    bad.fwd.stage_level_ptr.pop_back();
    EXPECT_FALSE(validate_level_sweep_schedule(bad, s));
  }
  if (!good.fwd_deps.empty()) {  // dropped point-to-point coverage
    auto bad = good;
    for (auto& d : bad.fwd_deps) d.stage = 0;
    bad.fwd_deps.clear();
    std::fill(bad.fwd_dep_ptr.begin(), bad.fwd_dep_ptr.end(), 0);
    EXPECT_FALSE(validate_level_sweep_schedule(bad, s));
  }
}

// ---------------------------------------------------------------------
// Level engine (kernels/fbmpk_level_engine): bitwise agreement with the
// serial kernel across thread counts and odd/even k.

class LevelEngineTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LevelEngineTest, BitwiseEqualsSerial) {
  const auto [k, threads] = GetParam();
  set_threads(threads);
  const auto a = test::random_matrix(340, 8.0, false, 91);
  const auto s = split_triangular(a);
  const auto levels = LevelSchedulePair::of(s);
  const auto sched =
      build_level_sweep_schedule(levels, s, static_cast<index_t>(threads));
  const auto x = test::random_vector(340, 92);

  AlignedVector<double> y_eng(340), y_ser(340);
  SweepWorkspace<double> we;
  FbWorkspace<double> ws;
  fbmpk_level_engine_power<double>(s, levels, sched, x, k, y_eng, we);
  fbmpk_power<double>(s, x, k, y_ser, ws);
  for (index_t i = 0; i < 340; ++i)
    ASSERT_EQ(y_eng[i], y_ser[i]) << "row " << i << " k=" << k;
  set_threads(max_threads());
}

INSTANTIATE_TEST_SUITE_P(
    PowersAndThreads, LevelEngineTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values(1, 2, 4, 7)));

TEST(LevelEngine, PlanPointToPointUsesLevelScheduleAndMatchesSerial) {
  const auto a = gen::make_laplacian_2d(22, 22);
  PlanOptions opts;
  opts.reorder = false;
  opts.parallel = true;
  opts.scheduler = Scheduler::kLevels;
  opts.sweep.sync = SweepSync::kPointToPoint;
  auto plan = MpkPlan::build(a, opts);
  ASSERT_FALSE(plan.level_sweep_schedule().empty());
  EXPECT_EQ(plan.level_sweep_schedule().num_threads,
            static_cast<index_t>(max_threads()));

  // The levels plan runs the natural order, so the bitwise oracle is
  // the natural-order serial plan (the permutation changes the row-sum
  // accumulation order, the schedule does not).
  PlanOptions serial;
  serial.parallel = false;
  serial.reorder = false;
  auto ps = MpkPlan::build(a, serial);

  const auto x = test::random_vector(a.rows(), 17);
  AlignedVector<double> y(a.rows()), ref(a.rows());
  for (int k : {1, 4, 5}) {
    plan.power(x, k, y);
    ps.power(x, k, ref);
    for (index_t i = 0; i < a.rows(); ++i)
      ASSERT_EQ(y[i], ref[i]) << "row " << i << " k=" << k;
  }
}

TEST(LevelEngine, AutoSchedulerResolvesStructurally) {
  // !reorder forces the level scheduler; a reordered build probes the
  // mean forward level width and records its pick in the options.
  const auto a = gen::make_laplacian_2d(16, 16);
  PlanOptions opts;
  opts.reorder = false;
  opts.parallel = true;
  opts.scheduler = Scheduler::kAuto;
  auto plan = MpkPlan::build(a, opts);
  EXPECT_EQ(plan.options().scheduler, Scheduler::kLevels);

  PlanOptions ro;
  ro.parallel = true;
  ro.scheduler = Scheduler::kAuto;
  auto plan2 = MpkPlan::build(a, ro);
  EXPECT_NE(plan2.options().scheduler, Scheduler::kAuto);
}

TEST(LevelKernel, GridLevelsAreFarFewerThanRows) {
  // Grid matrices have wide wavefronts: level count ~ grid diameter,
  // much smaller than n — the property that makes the schedule useful.
  const auto a = gen::make_laplacian_2d(30, 30);
  const auto s = split_triangular(a);
  const auto fwd = forward_levels(s.lower);
  EXPECT_LT(fwd.num_levels, a.rows() / 4);
  EXPECT_GE(fwd.num_levels, 30);  // at least the grid diameter
}

}  // namespace
}  // namespace fbmpk
