// Flight recorder tests (src/telemetry/flight_recorder.*,
// docs/OBSERVABILITY.md): ring overflow semantics, seqlock consistency
// under concurrent writers (the tsan CI job runs the Flight* suites),
// anomaly dumps producing valid Chrome traces, and the typed failure
// modes (disarmed / budget / unwritable directory).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk {
namespace {

namespace fs = std::filesystem;

telemetry::Registry& reg() { return telemetry::Registry::instance(); }

telemetry::SpanEvent make_event(const char* name, std::int64_t value) {
  telemetry::SpanEvent e;
  e.name = name;
  e.cat = telemetry::Cat::kService;
  e.start_ns = value;
  e.dur_ns = 1;
  e.args.value = value;
  return e;
}

/// RAII disarm + registry cleanup so dump state never leaks between
/// tests (arm/disarm are process-global).
struct ScopedFlight {
  explicit ScopedFlight(const std::string& dir, std::size_t max_dumps = 8) {
    reg().reset();
    reg().set_enabled(true);
    telemetry::FlightDumpOptions opts;
    opts.dir = dir;
    opts.max_dumps = max_dumps;
    telemetry::arm_flight_dumps(opts);
  }
  ~ScopedFlight() {
    telemetry::disarm_flight_dumps();
    reg().set_enabled(false);
    reg().reset();
  }
};

// --------------------------------------------------------------------------
// FlightRing
// --------------------------------------------------------------------------

TEST(FlightRing, OverflowKeepsTheNewestCapacityEvents) {
  telemetry::FlightRing ring;
  constexpr std::uint64_t kTotal = telemetry::FlightRing::kCapacity + 500;
  for (std::uint64_t i = 0; i < kTotal; ++i)
    ring.push(make_event("flight.test", static_cast<std::int64_t>(i)));
  EXPECT_EQ(ring.pushes(), kTotal);

  std::vector<telemetry::SpanEvent> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), telemetry::FlightRing::kCapacity);
  // Oldest-first, and exactly the last kCapacity values survive.
  EXPECT_EQ(out.front().args.value,
            static_cast<std::int64_t>(kTotal -
                                      telemetry::FlightRing::kCapacity));
  EXPECT_EQ(out.back().args.value, static_cast<std::int64_t>(kTotal - 1));
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_EQ(out[i].args.value, out[i - 1].args.value + 1);
}

TEST(FlightRing, ClearDropsResidentEventsButPushStillWorks) {
  telemetry::FlightRing ring;
  for (int i = 0; i < 10; ++i) ring.push(make_event("flight.test", i));
  ring.clear();
  std::vector<telemetry::SpanEvent> out;
  ring.snapshot(out);
  EXPECT_TRUE(out.empty());
  ring.push(make_event("flight.test", 42));
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].args.value, 42);
}

TEST(FlightRing, ConcurrentWriterAndSnapshotsNeverTear) {
  // One writer per ring (the real topology: rings are thread-local)
  // racing concurrent snapshotters. The seqlock must hand every reader
  // a consistent event: name/value always agree, no torn half-writes.
  // The tsan CI job runs this under ThreadSanitizer.
  static const char* kNames[4] = {"flight.w0", "flight.w1", "flight.w2",
                                  "flight.w3"};
  telemetry::FlightRing ring;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int lane = static_cast<int>(i & 3);
      telemetry::SpanEvent e = make_event(kNames[lane], i * 4 + lane);
      ring.push(e);
      ++i;
    }
  });

  // Let the writer get scheduled before the first snapshot so every
  // round observes a live ring.
  while (ring.pushes() == 0) std::this_thread::yield();

  std::int64_t checked = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<telemetry::SpanEvent> out;
    ring.snapshot(out);
    for (const auto& e : out) {
      // value encodes the lane whose name literal was written in the
      // same push: a mismatch would be a torn slot.
      const int lane = static_cast<int>(e.args.value & 3);
      ASSERT_EQ(e.name, kNames[lane]);
      ASSERT_EQ(e.dur_ns, 1);
      ++checked;
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(checked, 0);
}

// --------------------------------------------------------------------------
// Flight dumps
// --------------------------------------------------------------------------

TEST(FlightDump, DisarmedTriggerReturnsUnsupported) {
  telemetry::disarm_flight_dumps();
  const auto r = telemetry::trigger_flight_dump("timeout");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.code(), ErrorCode::kUnsupported);
}

TEST(FlightDump, ArmedTriggerWritesValidTraceWithReasonMarker) {
  const fs::path dir = fs::temp_directory_path() / "fbmpk_flight_ok";
  fs::create_directories(dir);
  ScopedFlight scope(dir.string());
  {
    telemetry::ScopedSpan span(telemetry::Cat::kService, "service.request",
                               telemetry::SpanArgs{3, -1, false, -1, 11});
  }

  const auto r = telemetry::trigger_flight_dump("timeout");
  ASSERT_TRUE(r.has_value()) << r.error().what();
  EXPECT_EQ(telemetry::flight_dump_count(), 1u);
  std::ifstream in(r.value());
  ASSERT_TRUE(in.is_open());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string out = ss.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  // The marker lane names the trigger reason.
  EXPECT_NE(out.find("\"name\": \"timeout\""), std::string::npos);
  // The ring contents made it into the dump with their trace context.
  EXPECT_NE(out.find("\"name\": \"service.request\""), std::string::npos);
  EXPECT_NE(out.find("\"req\": 11"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
  fs::remove_all(dir);
}

TEST(FlightDump, BudgetExhaustionReturnsResourceLimit) {
  const fs::path dir = fs::temp_directory_path() / "fbmpk_flight_budget";
  fs::create_directories(dir);
  ScopedFlight scope(dir.string(), /*max_dumps=*/1);
  ASSERT_TRUE(telemetry::trigger_flight_dump("degrade").has_value());
  const auto r = telemetry::trigger_flight_dump("degrade");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.code(), ErrorCode::kResourceLimit);
  fs::remove_all(dir);
}

TEST(FlightDump, UnwritableDirReturnsIoAndConsumesBudget) {
  ScopedFlight scope("/nonexistent_fbmpk_flight_dir", /*max_dumps=*/2);
  const auto r = telemetry::trigger_flight_dump("quarantine");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.code(), ErrorCode::kIo);
  EXPECT_EQ(telemetry::flight_dump_count(), 0u);
  // The failed attempt consumed budget (no I/O storm on a broken dir).
  ASSERT_FALSE(telemetry::trigger_flight_dump("quarantine").has_value());
  const auto r3 = telemetry::trigger_flight_dump("quarantine");
  ASSERT_FALSE(r3.has_value());
  EXPECT_EQ(r3.code(), ErrorCode::kResourceLimit);
}

}  // namespace
}  // namespace fbmpk
