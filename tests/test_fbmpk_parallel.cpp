// Tests for the color-scheduled parallel FBMPK (Algorithm 2): the
// parallel kernel must equal the serial kernel bitwise on the permuted
// matrix, for every power, block count and thread count.
#include <gtest/gtest.h>

#include "gen/stencil.hpp"
#include "gen/suite.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/fbmpk_parallel.hpp"
#include "kernels/mpk_baseline.hpp"
#include "reorder/abmc.hpp"
#include "sparse/split.hpp"
#include "support/threading.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

struct Prepared {
  CsrMatrix<double> permuted;
  TriangularSplit<double> split;
  AbmcOrdering schedule;
};

Prepared prepare(const CsrMatrix<double>& a, index_t num_blocks) {
  AbmcOptions opts;
  opts.num_blocks = num_blocks;
  Prepared p;
  p.schedule = abmc_order(a, opts);
  p.permuted = permute_symmetric(a, p.schedule.perm);
  p.split = split_triangular(p.permuted);
  return p;
}

class ParallelFbmpkTest
    : public ::testing::TestWithParam<std::tuple<int, index_t, int>> {};

TEST_P(ParallelFbmpkTest, BitwiseEqualsSerialOnPermutedMatrix) {
  const auto [k, num_blocks, threads] = GetParam();
  set_threads(threads);
  const auto a = test::random_matrix(400, 7.0, true, 91);
  const auto p = prepare(a, num_blocks);
  const auto x = test::random_vector(400, 92);

  AlignedVector<double> y_par(400), y_ser(400);
  FbWorkspace<double> wp, ws;
  fbmpk_parallel_power<double>(p.split, p.schedule, x, k, y_par, wp);
  fbmpk_power<double>(p.split, x, k, y_ser, ws);
  for (index_t i = 0; i < 400; ++i)
    ASSERT_EQ(y_par[i], y_ser[i]) << "row " << i << " k=" << k;
  set_threads(max_threads());
}

INSTANTIATE_TEST_SUITE_P(
    PowersBlocksThreads, ParallelFbmpkTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9),
                       ::testing::Values<index_t>(1, 8, 32, 128),
                       ::testing::Values(1, 2, 4)));

TEST(ParallelFbmpk, MatchesBaselineInOriginalSpaceViaPermutation) {
  const auto a = gen::make_laplacian_2d(20, 20);
  const index_t n = a.rows();
  const auto p = prepare(a, 25);
  const auto x = test::random_vector(n, 7);

  // Permute input, run parallel FBMPK, unpermute output.
  AlignedVector<double> px(n), py(n), y(n), y_base(n);
  permute_vector<double>(p.schedule.perm, x, px);
  FbWorkspace<double> ws;
  fbmpk_parallel_power<double>(p.split, p.schedule,
                               std::span<const double>(px), 5, py, ws);
  unpermute_vector<double>(p.schedule.perm, py, y);

  MpkWorkspace<double> mws;
  mpk_power<double>(a, x, 5, y_base, mws);
  test::expect_near_rel(y, y_base, 1e-9);
}

TEST(ParallelFbmpk, PowerAllMatchesSerial) {
  const auto a = test::random_matrix(150, 6.0, false, 101);
  const auto p = prepare(a, 16);
  const auto x = test::random_vector(150, 102);
  const int k = 5;
  AlignedVector<double> b_par(150 * (k + 1)), b_ser(150 * (k + 1));
  FbWorkspace<double> wp, ws;
  fbmpk_parallel_power_all<double>(p.split, p.schedule, x, k, b_par, wp);
  fbmpk_power_all<double>(p.split, x, k, b_ser, ws);
  for (std::size_t i = 0; i < b_par.size(); ++i)
    ASSERT_EQ(b_par[i], b_ser[i]);
}

TEST(ParallelFbmpk, PolynomialMatchesSerial) {
  const auto a = test::random_matrix(150, 6.0, true, 103);
  const auto p = prepare(a, 16);
  const auto x = test::random_vector(150, 104);
  const AlignedVector<double> coeffs{1.0, 0.5, -0.25, 0.125};
  AlignedVector<double> y_par(150), y_ser(150);
  FbWorkspace<double> wp, ws;
  fbmpk_parallel_polynomial<double>(p.split, p.schedule, coeffs, x, y_par,
                                    wp);
  fbmpk_polynomial<double>(p.split, coeffs, x, y_ser, ws);
  for (index_t i = 0; i < 150; ++i) ASSERT_EQ(y_par[i], y_ser[i]);
}

TEST(ParallelFbmpk, SuiteMatricesSmallScale) {
  for (const auto& name : {"audikw_1", "G3_circuit", "cage14", "nlpkkt120"}) {
    const auto m = gen::make_suite_matrix(name, 0.02);
    const index_t n = m.matrix.rows();
    const auto p = prepare(m.matrix, 64);
    const auto x = test::random_vector(n, 1);
    AlignedVector<double> y_par(n), y_ser(n);
    FbWorkspace<double> wp, ws;
    fbmpk_parallel_power<double>(p.split, p.schedule, x, 4, y_par, wp);
    fbmpk_power<double>(p.split, x, 4, y_ser, ws);
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(y_par[i], y_ser[i]) << name << " row " << i;
  }
}

TEST(ParallelFbmpk, RejectsBadSchedule) {
  const auto a = test::random_matrix(50, 5.0, true, 105);
  const auto p = prepare(a, 8);
  const auto x = test::random_vector(50, 106);
  AlignedVector<double> y(50);
  FbWorkspace<double> ws;
  AbmcOrdering broken = p.schedule;
  broken.block_ptr.back() = 49;  // does not cover the matrix
  EXPECT_THROW(
      fbmpk_parallel_power<double>(p.split, broken, x, 3, y, ws), Error);
}

}  // namespace
}  // namespace fbmpk
