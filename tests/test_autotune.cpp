// Tests for the ABMC block-count autotuner.
#include <gtest/gtest.h>

#include "core/autotune.hpp"
#include "gen/stencil.hpp"
#include "kernels/mpk_baseline.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

TEST(Autotune, SamplesEveryCandidateAndPicksMinimum) {
  const auto a = gen::make_laplacian_2d(30, 30);
  const index_t candidates[] = {8, 32, 128};
  const auto r = autotune_block_count(a, 3, candidates, 2);
  ASSERT_EQ(r.samples.size(), 3u);
  double best = 1e300;
  for (const auto& s : r.samples) {
    EXPECT_GT(s.seconds, 0.0);
    EXPECT_GE(s.num_colors, 1);
    best = std::min(best, s.seconds);
  }
  EXPECT_DOUBLE_EQ(r.best_seconds, best);
  bool found = false;
  for (const auto& s : r.samples)
    if (s.num_blocks == r.best_blocks) {
      found = true;
      EXPECT_DOUBLE_EQ(s.seconds, r.best_seconds);
    }
  EXPECT_TRUE(found);
}

TEST(Autotune, BuiltPlanUsesWinnerAndIsCorrect) {
  const auto a = test::random_matrix(200, 6.0, true, 3);
  auto plan = build_autotuned_plan(a, 4);
  EXPECT_GT(plan.options().abmc.num_blocks, 0);

  const auto x = test::random_vector(200, 4);
  AlignedVector<double> y(200), ref(200);
  plan.power(x, 4, y);
  MpkWorkspace<double> ws;
  mpk_power<double>(a, x, 4, ref, ws);
  test::expect_near_rel(y, ref, 1e-8);
}

TEST(Autotune, RejectsBadArguments) {
  const auto a = gen::make_laplacian_2d(5, 5);
  EXPECT_THROW(autotune_block_count(a, 0), Error);
  EXPECT_THROW(autotune_block_count(a, 3, {}, 1), Error);
  const index_t bad[] = {0};
  EXPECT_THROW(autotune_block_count(a, 3, bad, 1), Error);
}

TEST(Autotune, RespectsBaseOptions) {
  const auto a = test::random_matrix(100, 5.0, true, 5);
  PlanOptions base;
  base.variant = FbVariant::kSplit;
  base.parallel = false;
  base.reorder = true;
  auto plan = build_autotuned_plan(a, 3, base);
  EXPECT_EQ(plan.options().variant, FbVariant::kSplit);
  EXPECT_FALSE(plan.options().parallel);
}

}  // namespace
}  // namespace fbmpk
