// Tests for the ABMC block-count autotuner.
#include <gtest/gtest.h>

#include <cmath>

#include "core/autotune.hpp"
#include "gen/stencil.hpp"
#include "kernels/mpk_baseline.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

TEST(Autotune, SamplesEveryCandidateAndPicksMinimum) {
  const auto a = gen::make_laplacian_2d(30, 30);
  const index_t candidates[] = {8, 32, 128};
  const auto r = autotune_block_count(a, 3, candidates, 2);
  ASSERT_EQ(r.samples.size(), 3u);
  double best = 1e300;
  for (const auto& s : r.samples) {
    EXPECT_GT(s.seconds, 0.0);
    EXPECT_GE(s.num_colors, 1);
    best = std::min(best, s.seconds);
  }
  EXPECT_DOUBLE_EQ(r.best_seconds, best);
  bool found = false;
  for (const auto& s : r.samples)
    if (s.num_blocks == r.best_blocks) {
      found = true;
      EXPECT_DOUBLE_EQ(s.seconds, r.best_seconds);
    }
  EXPECT_TRUE(found);
}

TEST(Autotune, BuiltPlanUsesWinnerAndIsCorrect) {
  const auto a = test::random_matrix(200, 6.0, true, 3);
  auto plan = build_autotuned_plan(a, 4);
  EXPECT_GT(plan.options().abmc.num_blocks, 0);

  const auto x = test::random_vector(200, 4);
  AlignedVector<double> y(200), ref(200);
  plan.power(x, 4, y);
  MpkWorkspace<double> ws;
  mpk_power<double>(a, x, 4, ref, ws);
  test::expect_near_rel(y, ref, 1e-8);
}

TEST(Autotune, RejectsBadArguments) {
  const auto a = gen::make_laplacian_2d(5, 5);
  EXPECT_THROW(autotune_block_count(a, 0), Error);
  EXPECT_THROW(autotune_block_count(a, 3, {}, 1), Error);
  const index_t bad[] = {0};
  EXPECT_THROW(autotune_block_count(a, 3, bad, 1), Error);
}

TEST(Autotune, RespectsBaseOptions) {
  const auto a = test::random_matrix(100, 5.0, true, 5);
  PlanOptions base;
  base.variant = FbVariant::kSplit;
  base.parallel = false;
  base.reorder = true;
  auto plan = build_autotuned_plan(a, 3, base);
  EXPECT_EQ(plan.options().variant, FbVariant::kSplit);
  EXPECT_FALSE(plan.options().parallel);
}

// ---------------------------------------------------------------------------
// Kernel-config autotuning over value precisions, and the persisted
// tuned config (PR 4).
// ---------------------------------------------------------------------------

// Round values to a coarse binary grid so each survives the hi/lo
// float round-trip — the generators jitter values with full mantissas,
// which would disqualify the split exact-eligibility path.
CsrMatrix<double> quantized_laplacian(index_t nx, index_t ny) {
  const auto a = gen::make_laplacian_2d(nx, ny);
  AlignedVector<index_t> rp(a.row_ptr().begin(), a.row_ptr().end());
  AlignedVector<index_t> ci(a.col_idx().begin(), a.col_idx().end());
  AlignedVector<double> va(a.values().begin(), a.values().end());
  for (auto& v : va) {
    v = std::round(v * 1024.0) * 0x1.0p-10;
    if (v == 0.0) v = 0x1.0p-10;
  }
  return CsrMatrix<double>(a.rows(), a.cols(), std::move(rp), std::move(ci),
                           std::move(va));
}

TEST(Autotune, KernelConfigSweepsPrecisionCandidates) {
  const auto a = quantized_laplacian(24, 24);  // split-lossless values
  const auto conservative = autotune_kernel_config(a, 3, /*reps=*/1);
  // Without allow_fast: scalar plain/compressed fp64, plus the split
  // candidates (exact-eligible on a split-lossless matrix).
  ASSERT_EQ(conservative.samples.size(), 4u);
  for (const auto& s : conservative.samples) {
    EXPECT_EQ(s.backend, KernelBackend::kScalar);
    EXPECT_NE(s.value_precision, ValuePrecision::kFp32);
    if (s.value_precision == ValuePrecision::kSplit) {
      EXPECT_GT(s.packed_value_bytes, 0u);
    }
  }

  const auto fast = autotune_kernel_config(a, 3, /*reps=*/1, {},
                                           /*allow_fast=*/true);
  EXPECT_GE(fast.samples.size(), conservative.samples.size());
  bool saw_fp32 = false;
  for (const auto& s : fast.samples)
    if (s.value_precision == ValuePrecision::kFp32) {
      saw_fp32 = true;
      EXPECT_GT(s.packed_value_bytes, 0u);
    }
  EXPECT_TRUE(saw_fp32) << "allow_fast must add fp32 candidates";
}

TEST(Autotune, BuildAutotunedPlanRecordsTunedConfig) {
  const auto a = test::random_matrix(150, 6.0, true, 11);
  auto plan = build_autotuned_plan(a, 3, {}, /*allow_fast_kernels=*/true);
  const TunedConfig& cfg = plan.tuned_config();
  EXPECT_TRUE(cfg.valid);
  EXPECT_EQ(cfg.backend, plan.options().kernel_backend);
  EXPECT_EQ(cfg.index_compress, plan.options().index_compress);
  EXPECT_EQ(cfg.value_precision, plan.options().value_precision);
  EXPECT_EQ(cfg.tuned_threads, static_cast<index_t>(max_threads()));
  EXPECT_GT(cfg.best_seconds, 0.0);
  EXPECT_FALSE(cfg.stale);
}

TEST(Autotune, TunedConfigStalenessPredicate) {
  const auto threads = static_cast<index_t>(max_threads());

  TunedConfig cfg;  // invalid: never stale, nothing to be stale about
  EXPECT_FALSE(tuned_config_stale(cfg, threads));
  EXPECT_FALSE(tuned_config_stale(cfg, threads + 5));

  cfg.valid = true;
  cfg.backend = KernelBackend::kScalar;
  cfg.tuned_threads = threads;
  EXPECT_FALSE(tuned_config_stale(cfg, threads));
  EXPECT_TRUE(tuned_config_stale(cfg, threads + 1));

  // A backend this machine cannot run makes the config stale even at
  // the matching thread count; an available one does not.
  cfg.backend = KernelBackend::kAvx512;
  EXPECT_EQ(tuned_config_stale(cfg, threads),
            !backend_available(KernelBackend::kAvx512));
}

}  // namespace
}  // namespace fbmpk
