// Tests for the ABMC block-count autotuner.
#include <gtest/gtest.h>

#include <cmath>

#include "core/autotune.hpp"
#include "gen/stencil.hpp"
#include "kernels/mpk_baseline.hpp"
#include "support/fault_inject.hpp"
#include "support/threading.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

/// Exhaustive mode for tests that assert every candidate is measured.
constexpr OracleOptions kOracleOff{.enabled = false};

TEST(Autotune, SamplesEveryCandidateAndPicksMinimum) {
  const auto a = gen::make_laplacian_2d(30, 30);
  const index_t candidates[] = {8, 32, 128};
  const auto r = autotune_block_count(a, 3, candidates, 2, {}, kOracleOff);
  ASSERT_EQ(r.samples.size(), 3u);
  double best = 1e300;
  for (const auto& s : r.samples) {
    EXPECT_GT(s.seconds, 0.0);
    EXPECT_GE(s.num_colors, 1);
    best = std::min(best, s.seconds);
  }
  EXPECT_DOUBLE_EQ(r.best_seconds, best);
  bool found = false;
  for (const auto& s : r.samples)
    if (s.num_blocks == r.best_blocks) {
      found = true;
      EXPECT_DOUBLE_EQ(s.seconds, r.best_seconds);
    }
  EXPECT_TRUE(found);
}

TEST(Autotune, BuiltPlanUsesWinnerAndIsCorrect) {
  const auto a = test::random_matrix(200, 6.0, true, 3);
  auto plan = build_autotuned_plan(a, 4);
  EXPECT_GT(plan.options().abmc.num_blocks, 0);

  const auto x = test::random_vector(200, 4);
  AlignedVector<double> y(200), ref(200);
  plan.power(x, 4, y);
  MpkWorkspace<double> ws;
  mpk_power<double>(a, x, 4, ref, ws);
  test::expect_near_rel(y, ref, 1e-8);
}

TEST(Autotune, RejectsBadArguments) {
  const auto a = gen::make_laplacian_2d(5, 5);
  EXPECT_THROW(autotune_block_count(a, 0), Error);
  EXPECT_THROW(autotune_block_count(a, 3, {}, 1), Error);
  const index_t bad[] = {0};
  EXPECT_THROW(autotune_block_count(a, 3, bad, 1), Error);
}

TEST(Autotune, RespectsBaseOptions) {
  const auto a = test::random_matrix(100, 5.0, true, 5);
  PlanOptions base;
  base.variant = FbVariant::kSplit;
  base.parallel = false;
  base.reorder = true;
  auto plan = build_autotuned_plan(a, 3, base);
  EXPECT_EQ(plan.options().variant, FbVariant::kSplit);
  EXPECT_FALSE(plan.options().parallel);
}

// ---------------------------------------------------------------------------
// Kernel-config autotuning over value precisions, and the persisted
// tuned config (PR 4).
// ---------------------------------------------------------------------------

// Round values to a coarse binary grid so each survives the hi/lo
// float round-trip — the generators jitter values with full mantissas,
// which would disqualify the split exact-eligibility path.
CsrMatrix<double> quantized_laplacian(index_t nx, index_t ny) {
  const auto a = gen::make_laplacian_2d(nx, ny);
  AlignedVector<index_t> rp(a.row_ptr().begin(), a.row_ptr().end());
  AlignedVector<index_t> ci(a.col_idx().begin(), a.col_idx().end());
  AlignedVector<double> va(a.values().begin(), a.values().end());
  for (auto& v : va) {
    v = std::round(v * 1024.0) * 0x1.0p-10;
    if (v == 0.0) v = 0x1.0p-10;
  }
  return CsrMatrix<double>(a.rows(), a.cols(), std::move(rp), std::move(ci),
                           std::move(va));
}

TEST(Autotune, KernelConfigSweepsPrecisionCandidates) {
  const auto a = quantized_laplacian(24, 24);  // split-lossless values
  const auto conservative =
      autotune_kernel_config(a, 3, /*reps=*/1, {}, /*allow_fast=*/false,
                             kOracleOff);
  // Without allow_fast: scalar plain/compressed fp64, plus the split
  // candidates (exact-eligible on a split-lossless matrix).
  ASSERT_EQ(conservative.samples.size(), 4u);
  for (const auto& s : conservative.samples) {
    EXPECT_EQ(s.backend, KernelBackend::kScalar);
    EXPECT_NE(s.value_precision, ValuePrecision::kFp32);
    if (s.value_precision == ValuePrecision::kSplit) {
      EXPECT_GT(s.packed_value_bytes, 0u);
    }
  }

  const auto fast = autotune_kernel_config(a, 3, /*reps=*/1, {},
                                           /*allow_fast=*/true, kOracleOff);
  EXPECT_GE(fast.samples.size(), conservative.samples.size());
  bool saw_fp32 = false;
  for (const auto& s : fast.samples)
    if (s.value_precision == ValuePrecision::kFp32) {
      saw_fp32 = true;
      EXPECT_GT(s.packed_value_bytes, 0u);
    }
  EXPECT_TRUE(saw_fp32) << "allow_fast must add fp32 candidates";
}

TEST(Autotune, BuildAutotunedPlanRecordsTunedConfig) {
  const auto a = test::random_matrix(150, 6.0, true, 11);
  auto plan = build_autotuned_plan(a, 3, {}, /*allow_fast_kernels=*/true);
  const TunedConfig& cfg = plan.tuned_config();
  EXPECT_TRUE(cfg.valid);
  EXPECT_EQ(cfg.backend, plan.options().kernel_backend);
  EXPECT_EQ(cfg.index_compress, plan.options().index_compress);
  EXPECT_EQ(cfg.value_precision, plan.options().value_precision);
  EXPECT_EQ(cfg.tuned_threads, static_cast<index_t>(max_threads()));
  EXPECT_GT(cfg.best_seconds, 0.0);
  EXPECT_FALSE(cfg.stale);
}

TEST(Autotune, TunedConfigStalenessPredicate) {
  const auto threads = static_cast<index_t>(max_threads());

  TunedConfig cfg;  // invalid: never stale, nothing to be stale about
  EXPECT_FALSE(tuned_config_stale(cfg, threads));
  EXPECT_FALSE(tuned_config_stale(cfg, threads + 5));

  cfg.valid = true;
  cfg.backend = KernelBackend::kScalar;
  cfg.tuned_threads = threads;
  EXPECT_FALSE(tuned_config_stale(cfg, threads));
  EXPECT_TRUE(tuned_config_stale(cfg, threads + 1));

  // A backend this machine cannot run makes the config stale even at
  // the matching thread count; an available one does not.
  cfg.backend = KernelBackend::kAvx512;
  EXPECT_EQ(tuned_config_stale(cfg, threads),
            !backend_available(KernelBackend::kAvx512));
}

// ---------------------------------------------------------------------------
// Traffic-oracle pruning (PR 8, docs/AUTOTUNING.md).
// ---------------------------------------------------------------------------

TEST(AutotuneOracle, PrunesBlockCandidatesAndScoresAll) {
  const auto a = gen::make_laplacian_2d(40, 40);
  OracleOptions oracle;  // defaults: enabled, top_k = 2
  const auto r = autotune_block_count(a, 3, default_block_candidates(),
                                      /*reps=*/1, {}, oracle);
  EXPECT_TRUE(r.oracle_used);
  ASSERT_EQ(r.samples.size(), default_block_candidates().size());
  EXPECT_EQ(r.candidates_pruned,
            static_cast<index_t>(r.samples.size()) - oracle.top_k);
  EXPECT_LE(r.candidates_timed, static_cast<index_t>(oracle.top_k));
  EXPECT_GE(r.candidates_timed, 1);
  for (const auto& s : r.samples) {
    EXPECT_GE(s.predicted_bytes, 0.0) << "every candidate must be scored";
    if (s.pruned) {
      EXPECT_EQ(s.seconds, 0.0);
    } else {
      EXPECT_GT(s.seconds, 0.0);
    }
  }
  EXPECT_GE(r.oracle_rank_of_winner, 1);
  EXPECT_LE(r.oracle_rank_of_winner, r.candidates_timed);
  EXPECT_GT(r.best_predicted_bytes, 0.0);
  // The winner is never a pruned candidate.
  for (const auto& s : r.samples)
    if (s.num_blocks == r.best_blocks) {
      EXPECT_FALSE(s.pruned);
    }
}

TEST(AutotuneOracle, FallsBackToExhaustiveWithoutReorder) {
  const auto a = gen::make_laplacian_2d(20, 20);
  PlanOptions base;
  base.reorder = false;
  base.parallel = false;
  const index_t candidates[] = {8, 32, 128};
  const auto r = autotune_block_count(a, 2, candidates, /*reps=*/1, base);
  EXPECT_FALSE(r.oracle_used);
  EXPECT_EQ(r.candidates_pruned, 0);
  EXPECT_EQ(r.candidates_timed, 3);
  EXPECT_EQ(r.oracle_rank_of_winner, 0);
}

TEST(AutotuneOracle, PrunesKernelConfigCandidates) {
  const auto a = quantized_laplacian(24, 24);  // 4 conservative candidates
  OracleOptions oracle;
  const auto r = autotune_kernel_config(a, 3, /*reps=*/1, {},
                                        /*allow_fast=*/false, oracle);
  EXPECT_TRUE(r.oracle_used);
  ASSERT_EQ(r.samples.size(), 4u);
  EXPECT_EQ(r.candidates_pruned, 2);
  EXPECT_LE(r.candidates_timed, 2);
  for (const auto& s : r.samples) {
    EXPECT_GE(s.predicted_bytes, 0.0);
    if (s.pruned) {
      EXPECT_EQ(s.seconds, 0.0);
    }
  }
  // Compressed indices shrink the modeled stream, so a compressed
  // candidate must never predict more traffic than its plain twin at
  // the same precision.
  for (const auto& s : r.samples)
    for (const auto& t : r.samples)
      if (s.index_compress && !t.index_compress &&
          s.value_precision == t.value_precision) {
        EXPECT_LE(s.predicted_bytes, t.predicted_bytes);
      }
}

// The CI `autotune-oracle` job runs this test by name. The pruned
// sweep must time at most a third of an 8-rung ladder, and its pick —
// looked up in the *exhaustive* measurement table, so the check is not
// at the mercy of two independent noisy timings — must be close to the
// exhaustive winner. 30% slack here guards the mechanism on shared CI
// hosts; the tight 5% acceptance number is measured across the full
// suite by bench_autotune_oracle.
TEST(AutotuneOracle, PrunedPickAgreesWithExhaustive) {
  const auto a = gen::make_laplacian_2d(60, 60);
  const int k = 4;
  const index_t candidates[] = {16, 32, 64, 96, 128, 192, 256, 512};
  const auto exhaustive =
      autotune_block_count(a, k, candidates, /*reps=*/5, {}, kOracleOff);
  ASSERT_EQ(exhaustive.candidates_timed,
            static_cast<index_t>(std::size(candidates)));
  const auto pruned = autotune_block_count(a, k, candidates, /*reps=*/5, {},
                                           OracleOptions{});
  ASSERT_TRUE(pruned.oracle_used);
  EXPECT_LE(pruned.candidates_timed,
            static_cast<index_t>(std::size(candidates)) / 3);
  double pick_seconds = -1.0;
  for (const auto& s : exhaustive.samples)
    if (s.num_blocks == pruned.best_blocks) pick_seconds = s.seconds;
  ASSERT_GT(pick_seconds, 0.0) << "oracle picked an untimed candidate";
  EXPECT_LE(pick_seconds, 1.30 * exhaustive.best_seconds)
      << "pruned pick " << pruned.best_blocks << " blocks vs exhaustive "
      << exhaustive.best_blocks;
}

TEST(AutotuneOracle, AutotunedPlanCarriesOracleProvenance) {
  const auto a = gen::make_laplacian_2d(32, 32);
  auto plan = build_autotuned_plan(a, 3);
  const TunedConfig& cfg = plan.tuned_config();
  EXPECT_TRUE(cfg.valid);
  EXPECT_TRUE(cfg.oracle_used);
  EXPECT_GT(cfg.oracle_predicted_bytes, 0.0);
  EXPECT_GT(cfg.candidates_scored, 0);
  EXPECT_GT(cfg.candidates_timed, 0);
  EXPECT_LT(cfg.candidates_timed, cfg.candidates_scored);
  EXPECT_GE(cfg.oracle_rank_of_winner, 1);

  PlanOptions off;
  off.autotune_oracle = false;
  auto exhaustive = build_autotuned_plan(a, 3, off);
  EXPECT_FALSE(exhaustive.tuned_config().oracle_used);
  EXPECT_EQ(exhaustive.tuned_config().oracle_rank_of_winner, 0);
}

// ---------------------------------------------------------------------------
// Typed-error skip: a failing candidate build is recorded, not fatal.
// ---------------------------------------------------------------------------

TEST(AutotuneFaults, FailedCandidateIsRecordedAndSkipped) {
  const auto a = gen::make_laplacian_2d(20, 20);
  const index_t candidates[] = {8, 32, 128};
  fault::Injector::instance().reset();
  fault::Injector::instance().arm(fault::Point::kAutotuneBuild, /*fires=*/1);
  const auto r =
      autotune_block_count(a, 2, candidates, /*reps=*/1, {}, kOracleOff);
  fault::Injector::instance().reset();

  ASSERT_EQ(r.samples.size(), 3u);
  EXPECT_TRUE(r.samples[0].failed);
  EXPECT_EQ(r.samples[0].error, ErrorCode::kResourceLimit);
  EXPECT_EQ(r.samples[0].seconds, 0.0);
  EXPECT_EQ(r.candidates_timed, 2);
  EXPECT_FALSE(r.samples[1].failed);
  EXPECT_FALSE(r.samples[2].failed);
  EXPECT_NE(r.best_blocks, 8);  // winner drawn from the survivors
  EXPECT_GT(r.best_seconds, 0.0);
}

TEST(AutotuneFaults, ThrowsOnlyWhenEveryCandidateFails) {
  const auto a = gen::make_laplacian_2d(20, 20);
  const index_t candidates[] = {8, 32};
  fault::Injector::instance().reset();
  fault::Injector::instance().arm(fault::Point::kAutotuneBuild, /*fires=*/2);
  try {
    autotune_block_count(a, 2, candidates, /*reps=*/1, {}, kOracleOff);
    FAIL() << "expected a typed error when every candidate fails";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceLimit);
  }
  fault::Injector::instance().reset();
}

TEST(AutotuneFaults, KernelConfigSkipsFailedCandidate) {
  const auto a = gen::make_laplacian_2d(20, 20);
  fault::Injector::instance().reset();
  fault::Injector::instance().arm(fault::Point::kAutotuneBuild, /*fires=*/1);
  const auto r = autotune_kernel_config(a, 2, /*reps=*/1, {},
                                        /*allow_fast=*/false, kOracleOff);
  fault::Injector::instance().reset();

  ASSERT_GE(r.samples.size(), 2u);
  EXPECT_TRUE(r.samples[0].failed);
  EXPECT_EQ(r.samples[0].error, ErrorCode::kResourceLimit);
  EXPECT_EQ(r.candidates_timed,
            static_cast<index_t>(r.samples.size()) - 1);
  EXPECT_GT(r.best_seconds, 0.0);
  // The scalar/plain baseline failed, so the winner is a later one.
  EXPECT_FALSE(r.best_backend == KernelBackend::kScalar &&
               !r.best_index_compress &&
               r.best_value_precision == ValuePrecision::kFp64);
}

// ---------------------------------------------------------------------------
// Scheduler race (docs/AUTOTUNING.md §the-scheduler-race).
// ---------------------------------------------------------------------------

TEST(AutotuneScheduler, StructuralShortcutsSkipTheRace) {
  const auto a = gen::make_laplacian_2d(20, 20);

  PlanOptions serial;
  serial.parallel = false;
  const SchedulerRaceResult sr = autotune_scheduler(a, 3, 1, serial);
  EXPECT_EQ(sr.best, Scheduler::kAbmc);
  EXPECT_FALSE(sr.measured);
  EXPECT_FALSE(sr.oracle_used);

  // Without the permutation ABMC is not a candidate at all.
  const int dflt = max_threads();
  set_threads(2);
  PlanOptions natural;
  natural.reorder = false;
  const SchedulerRaceResult nr = autotune_scheduler(a, 3, 1, natural);
  set_threads(dflt);
  EXPECT_EQ(nr.best, Scheduler::kLevels);
  EXPECT_FALSE(nr.measured);
}

TEST(AutotuneScheduler, RaceMeasuresBothAndScoresBoth) {
  const auto a = test::random_matrix(220, 7.0, true, 19);
  const int dflt = max_threads();
  set_threads(2);
  const SchedulerRaceResult r = autotune_scheduler(a, 4, /*reps=*/2);
  set_threads(dflt);

  // Default oracle keeps top_k = 2, so both contenders are timed and
  // both predictions recorded; the verdict follows the measurement.
  ASSERT_TRUE(r.measured);
  EXPECT_TRUE(r.oracle_used);
  EXPECT_GT(r.abmc_seconds, 0.0);
  EXPECT_GT(r.levels_seconds, 0.0);
  EXPECT_GT(r.abmc_predicted_bytes, 0.0);
  EXPECT_GT(r.levels_predicted_bytes, 0.0);
  EXPECT_EQ(r.best, r.levels_seconds < r.abmc_seconds ? Scheduler::kLevels
                                                      : Scheduler::kAbmc);
}

TEST(AutotuneScheduler, AutotunedPlanCarriesSchedulerProvenance) {
  const auto a = test::random_matrix(180, 6.0, true, 23);
  const int dflt = max_threads();
  set_threads(2);
  PlanOptions base;
  base.scheduler = Scheduler::kAuto;
  auto plan = build_autotuned_plan(a, 3, base, /*allow_fast_kernels=*/false);
  set_threads(dflt);

  // kAuto never survives the build; the raced pick is persisted with
  // the loser's time so a reloaded plan can explain itself.
  EXPECT_NE(plan.options().scheduler, Scheduler::kAuto);
  const TunedConfig& cfg = plan.tuned_config();
  ASSERT_TRUE(cfg.valid);
  EXPECT_EQ(cfg.scheduler, plan.options().scheduler);
  EXPECT_TRUE(cfg.scheduler_measured);
  EXPECT_GT(cfg.scheduler_alt_seconds, 0.0);
  // A levels verdict carries its shipping configuration: natural order.
  if (cfg.scheduler == Scheduler::kLevels) {
    EXPECT_FALSE(plan.options().reorder);
  }
}

TEST(AutotuneScheduler, NameRoundTrip) {
  for (const Scheduler s :
       {Scheduler::kAbmc, Scheduler::kLevels, Scheduler::kAuto})
    EXPECT_EQ(parse_scheduler(scheduler_name(s)), s);
  EXPECT_THROW(parse_scheduler("colorful"), Error);
}

}  // namespace
}  // namespace fbmpk
