// Tests for the persistent-threads sweep engine (docs/PARALLELISM.md):
// the point-to-point engine must equal the serial FBMPK kernel bitwise
// for every thread count, power parity and matrix family, the schedule
// must validate structurally and survive plan serialization, and every
// unsafe configuration must fall back to the barrier kernel rather
// than produce a different answer.
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "core/plan.hpp"
#include "core/plan_io.hpp"
#include "gen/kkt.hpp"
#include "gen/stencil.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/fbmpk_parallel.hpp"
#include "kernels/sweep_schedule.hpp"
#include "perf/cost_model.hpp"
#include "reorder/abmc.hpp"
#include "reorder/nnz_partition.hpp"
#include "sparse/split.hpp"
#include "support/threading.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

struct Prepared {
  CsrMatrix<double> permuted;
  TriangularSplit<double> split;
  AbmcOrdering schedule;
};

Prepared prepare(const CsrMatrix<double>& a, index_t num_blocks) {
  AbmcOptions opts;
  opts.num_blocks = num_blocks;
  Prepared p;
  p.schedule = abmc_order(a, opts);
  p.permuted = permute_symmetric(a, p.schedule.perm);
  p.split = split_triangular(p.permuted);
  return p;
}

/// Restores the OpenMP thread default when a test body returns.
struct ThreadGuard {
  int saved = max_threads();
  ~ThreadGuard() { set_threads(saved); }
};

/// The matrix families named by the acceptance criteria: structured
/// stencil, random symmetric, random unsymmetric, and a KKT saddle
/// point (many colors, uneven block weights).
std::vector<std::pair<std::string, CsrMatrix<double>>> test_matrices() {
  std::vector<std::pair<std::string, CsrMatrix<double>>> out;
  out.emplace_back("laplacian_2d", gen::make_laplacian_2d(16, 16));
  out.emplace_back("random_sym", test::random_matrix(300, 7.0, true, 21));
  out.emplace_back("random_unsym", test::random_matrix(300, 6.0, false, 22));
  out.emplace_back("kkt_saddle", gen::make_kkt_saddle(5, 5, 5, {}));
  return out;
}

class SweepEngineTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SweepEngineTest, BitwiseEqualsSerialAcrossMatrixFamilies) {
  const auto [k, threads] = GetParam();
  ThreadGuard guard;
  set_threads(threads);
  for (const auto& [name, a] : test_matrices()) {
    const index_t n = a.rows();
    const auto p = prepare(a, 24);
    const auto sched =
        build_sweep_schedule(p.schedule, p.split, threads);
    ASSERT_TRUE(validate_sweep_schedule(sched, p.schedule)) << name;
    const auto x = test::random_vector(n, 23);

    AlignedVector<double> y_eng(n), y_ser(n);
    SweepWorkspace<double> we;
    FbWorkspace<double> ws;
    fbmpk_engine_power<double>(p.split, p.schedule, sched, x, k, y_eng, we);
    fbmpk_power<double>(p.split, x, k, y_ser, ws);
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(y_eng[i], y_ser[i])
          << name << " row " << i << " k=" << k << " threads=" << threads;
  }
}

// Thread counts cross the container's core count on purpose
// (oversubscription exercises the futex-wait path); k values cover odd
// and even pair parities including the tail stage.
INSTANTIATE_TEST_SUITE_P(
    PowersAndThreads, SweepEngineTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 5, 8),
                       ::testing::Values(1, 2, 4, 7)));

TEST(SweepEngine, PowerAllMatchesSerialBitwise) {
  ThreadGuard guard;
  set_threads(4);
  const auto a = test::random_matrix(200, 6.0, false, 31);
  const auto p = prepare(a, 16);
  const auto sched = build_sweep_schedule(p.schedule, p.split, 4);
  const auto x = test::random_vector(200, 32);
  const int k = 5;
  AlignedVector<double> b_eng(200 * (k + 1)), b_ser(200 * (k + 1));
  SweepWorkspace<double> we;
  FbWorkspace<double> ws;
  fbmpk_engine_power_all<double>(p.split, p.schedule, sched, x, k, b_eng, we);
  fbmpk_power_all<double>(p.split, x, k, b_ser, ws);
  for (std::size_t i = 0; i < b_eng.size(); ++i)
    ASSERT_EQ(b_eng[i], b_ser[i]) << "entry " << i;
}

TEST(SweepEngine, PolynomialMatchesSerialBitwise) {
  ThreadGuard guard;
  set_threads(4);
  const auto a = test::random_matrix(200, 6.0, true, 33);
  const auto p = prepare(a, 16);
  const auto sched = build_sweep_schedule(p.schedule, p.split, 4);
  const auto x = test::random_vector(200, 34);
  const AlignedVector<double> coeffs{2.0, -1.0, 0.5, -0.25, 0.125};
  AlignedVector<double> y_eng(200), y_ser(200);
  SweepWorkspace<double> we;
  FbWorkspace<double> ws;
  fbmpk_engine_polynomial<double>(p.split, p.schedule, sched, coeffs, x,
                                  y_eng, we);
  fbmpk_polynomial<double>(p.split, coeffs, x, y_ser, ws);
  for (index_t i = 0; i < 200; ++i) ASSERT_EQ(y_eng[i], y_ser[i]);
}

TEST(SweepEngine, WorkspaceReusesAcrossPowersAndMatrices) {
  // One workspace across changing k and changing matrix size: resize
  // and the first-touch warm flag must not leak state between runs.
  ThreadGuard guard;
  set_threads(2);
  SweepWorkspace<double> we;
  for (const index_t n : {100, 240, 100}) {
    const auto a = test::random_matrix(n, 6.0, true, 40 + n);
    const auto p = prepare(a, 12);
    const auto sched = build_sweep_schedule(p.schedule, p.split, 2);
    const auto x = test::random_vector(n, 41);
    for (const int k : {0, 1, 4, 5}) {
      AlignedVector<double> y_eng(n), y_ser(n);
      FbWorkspace<double> ws;
      fbmpk_engine_power<double>(p.split, p.schedule, sched, x, k, y_eng,
                                 we);
      fbmpk_power<double>(p.split, x, k, y_ser, ws);
      for (index_t i = 0; i < n; ++i)
        ASSERT_EQ(y_eng[i], y_ser[i]) << "n=" << n << " k=" << k;
    }
  }
}

TEST(SweepEngine, OversubscribedScheduleFallsBackBitwiseCorrect) {
  // A schedule built for more threads than the runtime offers cannot
  // run point-to-point; try must refuse and the wrapper must still
  // produce the serial answer through the barrier fallback.
  ThreadGuard guard;
  set_threads(2);
  const auto a = test::random_matrix(150, 6.0, true, 51);
  const auto p = prepare(a, 16);
  const auto sched =
      build_sweep_schedule(p.schedule, p.split, max_threads() + 14);
  const auto x = test::random_vector(150, 52);

  SweepWorkspace<double> we;
  EXPECT_FALSE(fbmpk_engine_try_sweep<double>(
      p.split, p.schedule, sched, x, 3, we, false,
      [](int, index_t, double) {}));

  AlignedVector<double> y_eng(150), y_ser(150);
  FbWorkspace<double> ws;
  fbmpk_engine_power<double>(p.split, p.schedule, sched, x, 3, y_eng, we);
  fbmpk_power<double>(p.split, x, 3, y_ser, ws);
  for (index_t i = 0; i < 150; ++i) ASSERT_EQ(y_eng[i], y_ser[i]);
}

TEST(SweepSchedule, ValidatesAndRejectsTampering) {
  const auto a = test::random_matrix(250, 7.0, true, 61);
  const auto p = prepare(a, 20);
  for (const index_t t : {1, 2, 4, 7}) {
    const auto sched = build_sweep_schedule(p.schedule, p.split, t);
    EXPECT_TRUE(validate_sweep_schedule(sched, p.schedule)) << t;
    EXPECT_EQ(sched.num_threads, t);
    EXPECT_EQ(sched.num_colors, p.schedule.num_colors);
    EXPECT_EQ(sched.num_blocks, p.schedule.num_blocks);
  }

  auto sched = build_sweep_schedule(p.schedule, p.split, 3);
  {
    auto broken = sched;  // a block assigned to the wrong color slot
    ASSERT_GE(broken.part_blocks.size(), 2u);
    std::swap(broken.part_blocks.front(), broken.part_blocks.back());
    EXPECT_FALSE(validate_sweep_schedule(broken, p.schedule));
  }
  {
    auto broken = sched;  // dep pointing at a thread outside the team
    if (!broken.fwd_deps.empty()) {
      broken.fwd_deps.front().thread = broken.num_threads;
      EXPECT_FALSE(validate_sweep_schedule(broken, p.schedule));
    }
  }
  {
    auto broken = sched;  // non-monotone partition pointer
    broken.part_ptr.back() += 1;
    EXPECT_FALSE(validate_sweep_schedule(broken, p.schedule));
  }
}

TEST(SweepSchedule, LptBalancesSkewedWeightsBetterThanStatic) {
  // One color, one heavy block: static by-count puts the heavy block
  // plus half the light ones on thread 0 (load 11); LPT isolates it
  // (load 8 vs 7).
  AbmcOrdering o;
  o.num_blocks = 8;
  o.num_colors = 1;
  o.color_ptr = {0, 8};
  const std::vector<index_t> w{8, 1, 1, 1, 1, 1, 1, 1};

  const auto stat =
      partition_colors(o, w, 2, PartitionStrategy::kBlockStatic);
  const auto lpt = partition_colors(o, w, 2, PartitionStrategy::kNnzLpt);
  const auto max_load = [](const ColorPartition& p) {
    index_t m = 0;
    for (index_t l : p.load) m = std::max(m, l);
    return m;
  };
  EXPECT_EQ(max_load(stat), 11);
  EXPECT_EQ(max_load(lpt), 8);
}

TEST(SweepSchedule, ImbalanceMetricIsSaneOnRealMatrix) {
  const auto a = test::random_matrix(400, 8.0, true, 71);
  const auto p = prepare(a, 32);
  const auto w = block_nnz_weights(p.schedule, p.split.lower.row_ptr(),
                                   p.split.upper.row_ptr());
  for (const auto strat :
       {PartitionStrategy::kBlockStatic, PartitionStrategy::kNnzLpt}) {
    const auto imb = perf::partition_imbalance(p.schedule, w, 4, strat);
    EXPECT_GE(imb.worst, imb.mean);
    EXPECT_GE(imb.mean, 1.0);
  }
}

TEST(SweepPlanIo, PointToPointPlanRoundTrips) {
  const auto a = gen::make_laplacian_3d(8, 8, 8);
  PlanOptions opts;
  opts.sweep.sync = SweepSync::kPointToPoint;
  opts.sweep.threads = 2;
  auto plan = MpkPlan::build(a, opts);
  ASSERT_FALSE(plan.sweep_schedule().empty());
  EXPECT_EQ(plan.sweep_schedule().num_threads, 2);
  EXPECT_EQ(plan.stats().sweep_threads, 2);

  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  EXPECT_EQ(loaded.options().sweep.sync, SweepSync::kPointToPoint);
  EXPECT_EQ(loaded.options().sweep.threads, 2);
  ASSERT_FALSE(loaded.sweep_schedule().empty());
  EXPECT_EQ(loaded.sweep_schedule().num_threads, 2);
  EXPECT_EQ(loaded.sweep_schedule().part_blocks,
            plan.sweep_schedule().part_blocks);
  EXPECT_TRUE(
      validate_sweep_schedule(loaded.sweep_schedule(), loaded.schedule()));

  const auto x = test::random_vector(a.rows(), 81);
  AlignedVector<double> ya(a.rows()), yb(a.rows());
  plan.power(x, 6, ya);
  loaded.power(x, 6, yb);
  for (index_t i = 0; i < a.rows(); ++i) ASSERT_EQ(ya[i], yb[i]);
}

TEST(SweepPlanIo, PointToPointPlanMatchesBarrierPlanBitwise) {
  // Same ABMC schedule, different synchronization: the engine performs
  // the identical FP operations per row, so the two plans must agree
  // bitwise, not just approximately.
  ThreadGuard guard;
  set_threads(4);
  const auto a = test::random_matrix(300, 7.0, true, 82);
  PlanOptions barrier_opts;
  auto barrier_plan = MpkPlan::build(a, barrier_opts);
  PlanOptions p2p_opts;
  p2p_opts.sweep.sync = SweepSync::kPointToPoint;
  auto p2p_plan = MpkPlan::build(a, p2p_opts);

  const auto x = test::random_vector(300, 83);
  for (const int k : {1, 4, 7}) {
    AlignedVector<double> yb(300), yp(300);
    barrier_plan.power(x, k, yb);
    p2p_plan.power(x, k, yp);
    for (index_t i = 0; i < 300; ++i) ASSERT_EQ(yb[i], yp[i]) << "k=" << k;
  }
}

TEST(SweepPlanIo, CorruptedSweepBytesAreTypedError) {
  const auto a = gen::make_laplacian_2d(12, 12);
  PlanOptions opts;
  opts.sweep.sync = SweepSync::kPointToPoint;
  opts.sweep.threads = 2;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  const std::string full = buf.str();

  // Flip bytes at several payload offsets (the SWEP section sits
  // between SCHD and LVLS; the CRC turns any flip into a typed error).
  for (const std::size_t pos :
       {full.size() / 3, full.size() / 2, full.size() - 9}) {
    std::string corrupt = full;
    corrupt[pos] = static_cast<char>(
        static_cast<unsigned char>(corrupt[pos]) ^ 0xff);
    std::stringstream cbuf(corrupt);
    const auto r = try_load_plan(cbuf);
    ASSERT_FALSE(r) << "flip at " << pos << " accepted";
    EXPECT_EQ(r.code(), ErrorCode::kCorruptPlan) << "flip at " << pos;
  }
}

TEST(SweepPlanIo, RebuildsScheduleWhenRuntimeThreadsDiffer) {
  if (!has_openmp()) GTEST_SKIP() << "thread count fixed without OpenMP";
  ThreadGuard guard;
  set_threads(4);
  const auto a = gen::make_laplacian_2d(14, 14);
  PlanOptions opts;
  opts.sweep.sync = SweepSync::kPointToPoint;  // threads = 0: runtime default
  auto plan = MpkPlan::build(a, opts);
  ASSERT_EQ(plan.sweep_schedule().num_threads, 4);
  std::stringstream buf;
  save_plan(plan, buf);

  set_threads(2);  // loading host differs from the build host
  auto loaded = load_plan(buf);
  ASSERT_FALSE(loaded.sweep_schedule().empty());
  EXPECT_EQ(loaded.sweep_schedule().num_threads, 2);
  EXPECT_TRUE(
      validate_sweep_schedule(loaded.sweep_schedule(), loaded.schedule()));

  const auto x = test::random_vector(a.rows(), 91);
  AlignedVector<double> ya(a.rows()), yb(a.rows());
  plan.power(x, 5, ya);
  loaded.power(x, 5, yb);
  for (index_t i = 0; i < a.rows(); ++i) ASSERT_EQ(ya[i], yb[i]);
}

}  // namespace
}  // namespace fbmpk
