// Fault-injection suite: proves the ingestion layer rejects every
// corruption of its two persistent input formats — plan blobs and
// Matrix Market text — with a typed fbmpk::Error. No crash, no hang,
// no silent acceptance (acceptance criteria of the hardened plan
// format: the CRC32 makes every single-byte flip detectable).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "core/plan_io.hpp"
#include "gen/stencil.hpp"
#include "sparse/mm_io.hpp"
#include "support/fault_inject.hpp"

namespace fbmpk {
namespace {

std::string valid_plan_blob() {
  const auto a = gen::make_laplacian_2d(6, 6);
  auto plan = MpkPlan::build(a);
  std::ostringstream buf;
  save_plan(plan, buf);
  return buf.str();
}

/// A v5 blob whose VALP section carries real reduced-precision streams
/// (and PCKD a real sidecar) — the corpus for the mixed-precision
/// corruption sweeps.
std::string valid_plan_blob_mixed(ValuePrecision p) {
  const auto a = gen::make_laplacian_2d(6, 6);
  PlanOptions o;
  o.index_compress = true;
  o.value_precision = p;
  auto plan = MpkPlan::build(a, o);
  std::ostringstream buf;
  save_plan(plan, buf);
  return buf.str();
}

// Every corruption must surface as one of the ingestion error codes —
// never kInternal (that would mean a validation hole reached deep
// library invariants) and never a crash. kResourceLimit is in the set
// because a flipped payload-length byte can claim a size that is
// structurally plausible yet over the configured payload cap
// (set_plan_payload_cap): that guard fires before any allocation, so
// the corruption is still rejected typed instead of driving the
// process toward bad_alloc.
bool is_ingestion_code(ErrorCode c) {
  return c == ErrorCode::kCorruptPlan || c == ErrorCode::kVersionMismatch ||
         c == ErrorCode::kResourceLimit;
}

TEST(FaultInjection, EverySingleByteFlipIsRejected) {
  const std::string blob = valid_plan_blob();
  ASSERT_GT(blob.size(), 100u);

  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    const std::string mutated = flip_byte(blob, pos, 0xFF);
    std::istringstream in(mutated);
    try {
      auto plan = load_plan(in);
      FAIL() << "byte flip at " << pos << " of " << blob.size()
             << " was silently accepted";
    } catch (const Error& e) {
      EXPECT_TRUE(is_ingestion_code(e.code()))
          << "byte flip at " << pos << " raised '" << e.what()
          << "' with code " << error_code_name(e.code());
    }
    // No other exception type may escape (ASSERT via gtest's default
    // unexpected-exception handling -> test failure).
  }
}

// Same exhaustive sweep over blobs whose VALP section holds fp32 and
// split hi/lo streams: every flipped byte — header, options, value
// sidecar, tuned config — must surface as an ingestion error.
TEST(FaultInjection, EveryByteFlipInMixedPrecisionPlanIsRejected) {
  for (const ValuePrecision p :
       {ValuePrecision::kFp32, ValuePrecision::kSplit}) {
    const std::string blob = valid_plan_blob_mixed(p);
    ASSERT_GT(blob.size(), 100u);
    for (std::size_t pos = 0; pos < blob.size(); ++pos) {
      const std::string mutated = flip_byte(blob, pos, 0xFF);
      std::istringstream in(mutated);
      try {
        auto plan = load_plan(in);
        FAIL() << precision_name(p) << ": byte flip at " << pos << " of "
               << blob.size() << " was silently accepted";
      } catch (const Error& e) {
        EXPECT_TRUE(is_ingestion_code(e.code()))
            << precision_name(p) << ": byte flip at " << pos << " raised '"
            << e.what() << "' with code " << error_code_name(e.code());
      }
    }
  }
}

TEST(FaultInjection, EveryTruncationOfMixedPrecisionPlanIsRejected) {
  for (const ValuePrecision p :
       {ValuePrecision::kFp32, ValuePrecision::kSplit}) {
    const std::string blob = valid_plan_blob_mixed(p);
    for (std::size_t len = 0; len < blob.size(); ++len) {
      ShortReadStream in(blob, len);
      try {
        auto plan = load_plan(in);
        FAIL() << precision_name(p) << ": truncation to " << len << " of "
               << blob.size() << " bytes was silently accepted";
      } catch (const Error& e) {
        EXPECT_TRUE(is_ingestion_code(e.code()))
            << precision_name(p) << ": truncation to " << len
            << " raised code " << error_code_name(e.code());
      }
    }
  }
}

TEST(FaultInjection, MixedPrecisionRoundTripStillWorks) {
  for (const ValuePrecision p :
       {ValuePrecision::kFp32, ValuePrecision::kSplit}) {
    const std::string blob = valid_plan_blob_mixed(p);
    std::istringstream in(blob);
    auto plan = load_plan(in);
    EXPECT_EQ(plan.rows(), 36);
    EXPECT_EQ(plan.options().value_precision, p);
    EXPECT_GT(plan.stats().packed_value_bytes, 0u);
  }
}

TEST(FaultInjection, EverySingleBitFlipInHeaderIsRejected) {
  const std::string blob = valid_plan_blob();
  // The 24-byte header + the first payload bytes, one bit at a time —
  // the least-significant-bit flips are the ones a coarse mask could
  // mask out.
  const std::size_t limit = std::min<std::size_t>(blob.size(), 128);
  for (std::size_t pos = 0; pos < limit; ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      const std::string mutated =
          flip_byte(blob, pos, static_cast<std::uint8_t>(1u << bit));
      std::istringstream in(mutated);
      EXPECT_THROW(load_plan(in), Error)
          << "bit " << bit << " at byte " << pos;
    }
  }
}

TEST(FaultInjection, EveryTruncationIsRejected) {
  const std::string blob = valid_plan_blob();
  for (std::size_t len = 0; len < blob.size(); ++len) {
    ShortReadStream in(blob, len);
    try {
      auto plan = load_plan(in);
      FAIL() << "truncation to " << len << " of " << blob.size()
             << " bytes was silently accepted";
    } catch (const Error& e) {
      EXPECT_TRUE(is_ingestion_code(e.code()))
          << "truncation to " << len << " raised code "
          << error_code_name(e.code());
    }
  }
}

TEST(FaultInjection, HardReadFaultSurfacesAsError) {
  const std::string blob = valid_plan_blob();
  for (std::size_t len : {std::size_t{0}, std::size_t{8}, std::size_t{24},
                          blob.size() / 2, blob.size() - 1}) {
    FailingStream in(blob, len);
    EXPECT_THROW(load_plan(in), Error) << "fault after " << len << " bytes";
  }
}

TEST(FaultInjection, V1StreamRejectedWithVersionError) {
  // A v1 stream: same magic, version word 1, then arbitrary payload
  // bytes laid out per the old raw-POD format.
  std::string v1("FBMPKPLN", 8);
  const std::uint32_t version = 1, width = 4;
  v1.append(reinterpret_cast<const char*>(&version), 4);
  v1.append(reinterpret_cast<const char*>(&width), 4);
  v1.append(64, '\x01');
  std::istringstream in(v1);
  try {
    load_plan(in);
    FAIL() << "v1 stream accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kVersionMismatch);
  }
}

TEST(FaultInjection, ForeignIndexWidthRejected) {
  std::string blob = valid_plan_blob();
  const std::uint32_t width64 = 8;
  blob.replace(12, 4, reinterpret_cast<const char*>(&width64), 4);
  std::istringstream in(blob);
  try {
    load_plan(in);
    FAIL() << "foreign index width accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kVersionMismatch);
  }
}

TEST(FaultInjection, RoundTripStillWorksAfterHardening) {
  const std::string blob = valid_plan_blob();
  std::istringstream in(blob);
  auto plan = load_plan(in);
  EXPECT_EQ(plan.rows(), 36);
}

// ---------------------------------------------------------------------------
// Malformed Matrix Market corpus: every case must raise a typed Error,
// and the code must match the defect class.
// ---------------------------------------------------------------------------

struct MtxCase {
  const char* name;
  const char* text;
  ErrorCode expected;
};

TEST(FaultInjection, MalformedMatrixMarketCorpus) {
  const std::vector<MtxCase> corpus = {
      {"empty stream", "", ErrorCode::kParse},
      {"no banner", "3 3 1\n1 1 1.0\n", ErrorCode::kParse},
      {"bad object", "%%MatrixMarket graph coordinate real general\n1 1 0\n",
       ErrorCode::kUnsupported},
      {"array format", "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
       ErrorCode::kUnsupported},
      {"complex field",
       "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
       ErrorCode::kUnsupported},
      {"hermitian symmetry",
       "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1.0\n",
       ErrorCode::kUnsupported},
      {"bad symmetry word",
       "%%MatrixMarket matrix coordinate real diagonal\n1 1 1\n1 1 1.0\n",
       ErrorCode::kUnsupported},
      {"missing size line", "%%MatrixMarket matrix coordinate real general\n",
       ErrorCode::kParse},
      {"garbage size line",
       "%%MatrixMarket matrix coordinate real general\nfoo bar baz\n",
       ErrorCode::kParse},
      {"negative rows",
       "%%MatrixMarket matrix coordinate real general\n-3 3 1\n1 1 1.0\n",
       ErrorCode::kParse},
      {"negative nnz",
       "%%MatrixMarket matrix coordinate real general\n3 3 -1\n",
       ErrorCode::kParse},
      {"rows overflow index_t",
       "%%MatrixMarket matrix coordinate real general\n4294967296 2 0\n",
       ErrorCode::kResourceLimit},
      {"nnz overflow via symmetric doubling",
       "%%MatrixMarket matrix coordinate real symmetric\n"
       "2000000000 2000000000 2000000000\n",
       ErrorCode::kResourceLimit},
      {"truncated entries",
       "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 2.0\n",
       ErrorCode::kParse},
      {"malformed entry line",
       "%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n",
       ErrorCode::kParse},
      {"row index out of range",
       "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 2.0\n",
       ErrorCode::kInvalidMatrix},
      {"col index zero (one-based format)",
       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 0 2.0\n",
       ErrorCode::kInvalidMatrix},
      {"skew-symmetric nonzero diagonal",
       "%%MatrixMarket matrix coordinate real skew-symmetric\n"
       "2 2 1\n1 1 3.0\n",
       ErrorCode::kInvalidMatrix},
      {"skew-symmetric pattern",
       "%%MatrixMarket matrix coordinate pattern skew-symmetric\n"
       "2 2 1\n2 1\n",
       ErrorCode::kParse},
  };

  for (const auto& c : corpus) {
    std::istringstream in(c.text);
    try {
      read_matrix_market(in);
      FAIL() << "corpus case '" << c.name << "' was silently accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), c.expected)
          << "case '" << c.name << "' raised '" << e.what() << "'";
    }
  }
}

TEST(FaultInjection, MatrixMarketShortRead) {
  const std::string good =
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 2 2.0\n"
      "3 3 2.0\n";
  // Truncating mid-banner yields kParse (broken tag) or kUnsupported
  // (a keyword cut to an unknown word); truncating in the size/entry
  // lines yields kParse. The loop stops before the final entry's value
  // token: a text format cannot distinguish "3 3 2" truncated from
  // "3 3 2" intended, so only the last few bytes are inherently
  // undetectable — everything before them must be rejected.
  const std::size_t detectable = good.size() - 3;  // before "2.0\n" of entry 3
  for (std::size_t len = 0; len < detectable; ++len) {
    ShortReadStream in(good, len);
    try {
      read_matrix_market(in);
      FAIL() << "truncation to " << len << " accepted";
    } catch (const Error& e) {
      EXPECT_TRUE(e.code() == ErrorCode::kParse ||
                  e.code() == ErrorCode::kUnsupported)
          << "at length " << len << ": " << e.what();
    }
  }
}


// ---------------------------------------------------------------------------
// Length-field attacks: a corrupt size must fail typed BEFORE any
// allocation sized by it (the serving layer loads untrusted cache
// artifacts on the hot path — a bad length must never OOM the
// process).
// ---------------------------------------------------------------------------

/// Patch a little-endian u64 at `off` and leave everything else —
/// including the payload CRC, which does not cover the header — alone.
std::string patch_u64(std::string blob, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    blob[off + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  return blob;
}

/// Header layout: magic(8) version(u32) index_width(u32)
/// payload_size(u64 at 16) crc32(u32 at 24); payload starts at 28.
constexpr std::size_t kPayloadSizeOffset = 16;

TEST(FaultInjection, HugeClaimedPayloadFailsTypedBeforeAllocating) {
  const std::string blob = valid_plan_blob();
  // 512 GiB: structurally plausible (under the 1 TiB sanity bound) but
  // over the default 64 GiB payload cap — the cap must fire, typed,
  // before the loader tries to buffer it.
  const std::string huge =
      patch_u64(blob, kPayloadSizeOffset, 1ull << 39);
  std::istringstream in(huge);
  try {
    auto plan = load_plan(in);
    FAIL() << "512 GiB claimed payload was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceLimit);
  }
}

TEST(FaultInjection, PayloadCapIsConfigurable) {
  const std::string blob = valid_plan_blob();
  const std::uint64_t restore = plan_payload_cap();
  set_plan_payload_cap(16);  // far below any real plan
  std::istringstream in(blob);
  Expected<MpkPlan> r = try_load_plan(in);
  set_plan_payload_cap(restore);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.code(), ErrorCode::kResourceLimit);

  // With the cap restored the same bytes load fine.
  std::istringstream in2(blob);
  EXPECT_TRUE(try_load_plan(in2).has_value());
}

TEST(FaultInjection, FileSizeDisagreementIsRejectedBeforePayloadRead) {
  const auto a = gen::make_laplacian_2d(6, 6);
  auto plan = MpkPlan::build(a);
  const std::string path =
      ::testing::TempDir() + "/fbmpk_trailing_bytes.plan";
  save_plan_file(plan, path);
  {
    std::ofstream app(path, std::ios::binary | std::ios::app);
    app << "junk!";  // header now disagrees with the file size
  }
  Expected<MpkPlan> r = try_load_plan_file(path);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.code(), ErrorCode::kCorruptPlan);
  std::remove(path.c_str());
}

TEST(FaultInjection, SectionLengthFieldAttackFailsTyped) {
  // First framed section: tag(u32) at 28, length(u64) at 32. An
  // inflated section length must die on a bounds check or the CRC —
  // never reach an allocation of that size.
  const std::string blob = valid_plan_blob();
  for (const std::uint64_t claim :
       {std::uint64_t{1} << 62, std::uint64_t{0xFFFFFFFFFFFFFFFF},
        std::uint64_t{1} << 35}) {
    const std::string bad = patch_u64(blob, 32, claim);
    std::istringstream in(bad);
    try {
      auto plan = load_plan(in);
      FAIL() << "inflated section length " << claim << " was accepted";
    } catch (const Error& e) {
      EXPECT_TRUE(is_ingestion_code(e.code()))
          << "section length " << claim << " raised '" << e.what()
          << "' with code " << error_code_name(e.code());
    }
  }
}

// ---------------------------------------------------------------------------
// Runtime fault injector (fault::Injector): the switchboard the
// serving-layer soak flips. Semantics must be exact — tests arm
// specific fire/skip budgets and assert ladder transitions off them.
// ---------------------------------------------------------------------------

TEST(FaultInjection, RuntimeInjectorFireAndSkipBudgets) {
  auto& inj = fault::Injector::instance();
  inj.reset();
  EXPECT_FALSE(fault::should_fire(fault::Point::kAlloc));

  inj.arm(fault::Point::kAlloc, /*fires=*/2, /*skip=*/1);
  EXPECT_FALSE(fault::should_fire(fault::Point::kAlloc));  // skipped
  EXPECT_TRUE(fault::should_fire(fault::Point::kAlloc));
  EXPECT_TRUE(fault::should_fire(fault::Point::kAlloc));
  EXPECT_FALSE(fault::should_fire(fault::Point::kAlloc));  // exhausted
  EXPECT_EQ(inj.fired(fault::Point::kAlloc), 2);

  // Points are independent.
  inj.arm(fault::Point::kQueueFull, /*fires=*/1);
  EXPECT_FALSE(fault::should_fire(fault::Point::kAlloc));
  EXPECT_TRUE(fault::should_fire(fault::Point::kQueueFull));

  inj.reset();
  EXPECT_FALSE(fault::should_fire(fault::Point::kQueueFull));
  EXPECT_EQ(inj.fired(fault::Point::kQueueFull), 0);
}

TEST(FaultInjection, RuntimeInjectorStallBlocksForArmedDuration) {
  auto& inj = fault::Injector::instance();
  inj.reset();
  inj.arm(fault::Point::kSweepStall, /*fires=*/1, /*skip=*/0,
          /*stall_ms=*/50);
  const auto t0 = std::chrono::steady_clock::now();
  fault::maybe_stall(fault::Point::kSweepStall);  // fires: sleeps
  fault::maybe_stall(fault::Point::kSweepStall);  // exhausted: no-op
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(ms, 45.0);
  EXPECT_LT(ms, 500.0);
  inj.reset();
}

}  // namespace
}  // namespace fbmpk
