// Numerical edge cases the robustness layer must handle deliberately:
// zero diagonals (legal for MPK, fatal for D^-1 consumers), non-finite
// inputs (detected and reported, never silently propagated by the
// checked APIs), and degenerate nnz=0 matrices through the full
// plan -> execute -> serialize path.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "core/plan.hpp"
#include "core/plan_io.hpp"
#include "kernels/mpk_baseline.hpp"
#include "solvers/solvers.hpp"
#include "sparse/validate.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

const double kNan = std::numeric_limits<double>::quiet_NaN();
const double kInf = std::numeric_limits<double>::infinity();

// Square matrix whose diagonal is entirely zero (pure off-diagonal
// coupling, e.g. an adjacency matrix).
CsrMatrix<double> zero_diag_matrix(index_t n) {
  CooMatrix<double> coo(n, n);
  for (index_t i = 0; i + 1 < n; ++i) {
    coo.add(i, i + 1, 1.0 + 0.1 * static_cast<double>(i));
    coo.add(i + 1, i, 0.5);
  }
  return CsrMatrix<double>::from_coo(coo);
}

TEST(NumericalEdges, ZeroDiagonalRecurrenceMatchesBaseline) {
  // The recurrence kernel never divides by d, so a zero diagonal is
  // numerically fine — it must run and agree with the reference MPK.
  const auto a = zero_diag_matrix(40);
  const auto s = split_triangular(a);
  const auto x = test::random_vector(40, 99);
  const int k = 4;
  const std::vector<RecurrenceStep<double>> steps(
      static_cast<std::size_t>(k), RecurrenceStep<double>{1.0, 0.0, 0.0});

  std::vector<double> y(40);
  FbWorkspace<double> ws;
  const auto st = fbmpk_recurrence_checked(
      s, std::span<const RecurrenceStep<double>>(steps),
      std::span<const double>(x.data(), x.size()), std::span<double>(y), ws);
  EXPECT_TRUE(st.ok) << st.detail;

  std::vector<double> ref(40);
  MpkWorkspace<double> mws;
  mpk_power<double>(a, std::span<const double>(x.data(), x.size()), k,
                    std::span<double>(ref), mws);
  test::expect_near_rel(y, ref, 1e-12, "zero-diag recurrence");
}

TEST(NumericalEdges, ZeroDiagonalRejectedOnlyWhenDiagonalCheckOn) {
  const auto a = zero_diag_matrix(20);
  // Default plan build: zero diagonal is allowed (MPK never divides).
  EXPECT_NO_THROW(MpkPlan::build(a));
  // D^-1 consumers opt in to the diagonal check and get a typed error.
  PlanOptions opts;
  opts.sanitize.check_diagonal = true;
  try {
    MpkPlan::build(a, opts);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidMatrix);
  }
}

TEST(NumericalEdges, MultigridRejectsZeroDiagonal) {
  // TwoLevelMultigrid smooths with SYMGS (divides by d): building it
  // on a zero-diagonal operator must fail up front, not NaN later.
  const auto a = zero_diag_matrix(128);
  try {
    solvers::TwoLevelMultigrid::build(a);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidMatrix);
  }
}

TEST(NumericalEdges, CheckedRecurrenceReportsNonFiniteInput) {
  const auto a = test::random_matrix(30, 4.0, true, 3);
  const auto s = split_triangular(a);
  const std::vector<RecurrenceStep<double>> steps(
      3, RecurrenceStep<double>{1.0, 0.1, 0.0});
  FbWorkspace<double> ws;
  std::vector<double> y(30);

  for (double bad : {kNan, kInf, -kInf}) {
    auto x = test::random_vector(30, 7);
    x[13] = bad;
    const auto st = fbmpk_recurrence_checked(
        s, std::span<const RecurrenceStep<double>>(steps),
        std::span<const double>(x.data(), x.size()), std::span<double>(y), ws);
    EXPECT_FALSE(st.ok);
    EXPECT_EQ(st.code, ErrorCode::kNumericalBreakdown);
    EXPECT_EQ(st.row, 13);
  }
}

TEST(NumericalEdges, CheckedRecurrenceReportsNonFiniteCoefficient) {
  const auto a = test::random_matrix(20, 3.0, true, 4);
  const auto s = split_triangular(a);
  FbWorkspace<double> ws;
  std::vector<double> y(20);
  const auto x = test::random_vector(20, 8);
  const std::vector<RecurrenceStep<double>> steps{{1.0, kNan, 0.0}};
  const auto st = fbmpk_recurrence_checked(
      s, std::span<const RecurrenceStep<double>>(steps),
      std::span<const double>(x.data(), x.size()), std::span<double>(y), ws);
  EXPECT_FALSE(st.ok);
  EXPECT_EQ(st.code, ErrorCode::kNumericalBreakdown);
  EXPECT_EQ(st.row, -1);
}

TEST(NumericalEdges, PlanRecurrenceReportsBreakdownThroughPermutation) {
  // The plan-level API must catch non-finite inputs even when the plan
  // permutes (the offending row moves; detection happens pre-permute).
  const auto a = test::random_matrix(60, 4.0, true, 5);
  auto plan = MpkPlan::build(a);
  auto x = test::random_vector(60, 9);
  x[31] = kNan;
  std::vector<double> y(60);
  const std::vector<RecurrenceStep<double>> steps(
      2, RecurrenceStep<double>{0.9, 0.05, 0.0});
  const auto st =
      plan.recurrence(std::span<const RecurrenceStep<double>>(steps),
                      std::span<const double>(x.data(), x.size()),
                      std::span<double>(y));
  EXPECT_FALSE(st.ok);
  EXPECT_EQ(st.code, ErrorCode::kNumericalBreakdown);
  EXPECT_EQ(st.row, 31);

  // And a clean run on the same plan still succeeds.
  x[31] = 0.25;
  const auto ok =
      plan.recurrence(std::span<const RecurrenceStep<double>>(steps),
                      std::span<const double>(x.data(), x.size()),
                      std::span<double>(y));
  EXPECT_TRUE(ok.ok) << ok.detail;
}

TEST(NumericalEdges, UncheckedBaselinePropagatesButScanDetects) {
  // The raw kernels stay unchecked (hot path); the contract is that
  // check_finite exposes the poison the baseline propagates.
  const auto a = test::random_matrix(25, 3.0, false, 6);
  auto x = test::random_vector(25, 10);
  x[0] = kNan;
  std::vector<double> y(25);
  MpkWorkspace<double> ws;
  mpk_power<double>(a, std::span<const double>(x.data(), x.size()), 3,
                    std::span<double>(y), ws);
  const auto st = check_finite(std::span<const double>(y), "poisoned");
  EXPECT_FALSE(st.ok);
  EXPECT_EQ(st.code, ErrorCode::kNumericalBreakdown);
}

TEST(NumericalEdges, EmptyMatrixFullPipeline) {
  // nnz = 0: a legal (if useless) operator. Build, execute, serialize,
  // reload, execute again — all without error; A^k x = 0 for k >= 1.
  CooMatrix<double> coo(8, 8);
  const auto a = CsrMatrix<double>::from_coo(coo);
  ASSERT_EQ(a.nnz(), 0);

  auto plan = MpkPlan::build(a);
  const auto x = test::random_vector(8, 11);
  std::vector<double> y(8, 123.0);

  plan.power(std::span<const double>(x.data(), x.size()), 3,
             std::span<double>(y));
  for (double v : y) EXPECT_EQ(v, 0.0);

  // k = 0 is the identity even on the empty operator.
  plan.power(std::span<const double>(x.data(), x.size()), 0,
             std::span<double>(y));
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], x[i]);

  std::stringstream buf;
  save_plan(plan, buf);
  auto reloaded = load_plan(buf);
  EXPECT_EQ(reloaded.rows(), 8);
  std::vector<double> y2(8, -1.0);
  reloaded.power(std::span<const double>(x.data(), x.size()), 2,
                 std::span<double>(y2));
  for (double v : y2) EXPECT_EQ(v, 0.0);
}

TEST(NumericalEdges, SolverBreakdownStatuses) {
  // PCG on an indefinite matrix: p^T A p goes non-positive -> breakdown
  // status, not an exception and not a NaN loop.
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, -1.0);  // indefinite
  const auto a = CsrMatrix<double>::from_coo(coo);
  std::vector<double> b{1.0, 1.0};
  std::vector<double> x{0.0, 0.0};
  const auto res = solvers::pcg(a, b, x, solvers::identity_preconditioner());
  EXPECT_TRUE(res.breakdown || res.converged);
  if (res.breakdown) {
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.status.code, ErrorCode::kNumericalBreakdown);
  }

  // Chebyshev with a NaN right-hand side: breakdown, not a hang.
  const auto spd = test::random_matrix(30, 4.0, true, 12);
  std::vector<double> bb(30, 1.0);
  bb[5] = kNan;
  std::vector<double> xx(30, 0.0);
  const auto [lo, hi] = solvers::gershgorin_interval(spd);
  const auto cres = solvers::chebyshev_iteration(
      spd, bb, xx, std::max(lo, 1e-3), hi);
  EXPECT_TRUE(cres.breakdown);
  EXPECT_FALSE(cres.converged);

  // Power method on a nilpotent operator: A^s v == 0 for s >= n, so
  // the normalization hits yn == 0 -> breakdown flag instead of a
  // divide-by-zero poisoning the eigenvector estimate.
  CooMatrix<double> nil(4, 4);
  nil.add(0, 1, 1.0);
  nil.add(1, 2, 1.0);
  nil.add(2, 3, 1.0);
  const auto na = CsrMatrix<double>::from_coo(nil);
  auto plan = MpkPlan::build(na);
  std::vector<double> v(4, 1.0);
  const auto eres = solvers::power_method(na, plan, v, /*block_steps=*/6);
  EXPECT_TRUE(eres.breakdown);
  EXPECT_FALSE(eres.converged);
}

}  // namespace
}  // namespace fbmpk
