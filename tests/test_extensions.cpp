// Tests for the extension modules: SYMGS sweeps, the SELL-C-sigma
// format, and complex-coefficient SSpMV.
#include <gtest/gtest.h>

#include <complex>

#include "core/plan.hpp"
#include "gen/stencil.hpp"
#include "kernels/mpk_baseline.hpp"
#include "kernels/symgs.hpp"
#include "reorder/abmc.hpp"
#include "sparse/ops.hpp"
#include "sparse/sell.hpp"
#include "sparse/split.hpp"
#include "support/threading.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

// --------------------------------------------------------------------------
// SYMGS
// --------------------------------------------------------------------------

double residual_norm(const CsrMatrix<double>& a, std::span<const double> b,
                     std::span<const double> x) {
  AlignedVector<double> r(b.size());
  spmv<double>(a, x, r);
  double s = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double d = b[i] - r[i];
    s += d * d;
  }
  return std::sqrt(s);
}

TEST(Symgs, MatchesDenseReferenceSweep) {
  const auto a = test::random_matrix(40, 4.0, true, 3);
  const auto s = split_triangular(a);
  const auto b = test::random_vector(40, 4);
  AlignedVector<double> x(40, 0.0);
  symgs_serial<double>(s, b, x);

  // Dense reference of the same forward+backward relaxation.
  const auto dense = to_dense(a);
  std::vector<double> xr(40, 0.0);
  auto relax = [&](index_t i) {
    double diag = dense[static_cast<std::size_t>(i) * 40 + i];
    if (diag == 0.0) return;
    double sum = b[i];
    for (index_t j = 0; j < 40; ++j)
      if (j != i) sum -= dense[static_cast<std::size_t>(i) * 40 + j] * xr[j];
    xr[i] = sum / diag;
  };
  for (index_t i = 0; i < 40; ++i) relax(i);
  for (index_t i = 40; i-- > 0;) relax(i);
  test::expect_near_rel(x, xr, 1e-12);
}

TEST(Symgs, ConvergesOnDiagonallyDominantSystem) {
  const auto a = gen::make_laplacian_2d(20, 20);
  const auto s = split_triangular(a);
  const auto b = test::random_vector(400, 5);
  AlignedVector<double> x(400, 0.0);
  double prev = residual_norm(a, b, x);
  for (int sweep = 0; sweep < 10; ++sweep) {
    symgs_serial<double>(s, b, x);
    const double cur = residual_norm(a, b, x);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
  // Gauss-Seidel on the 2D grid contracts steadily but not fast; ask
  // for three orders of magnitude over ten sweeps.
  EXPECT_LT(prev, 1e-3 * residual_norm(a, b, AlignedVector<double>(400)));
}

TEST(Symgs, ParallelEqualsSerialOnPermutedMatrix) {
  for (int threads : {1, 4}) {
    set_threads(threads);
    const auto a = test::random_matrix(300, 7.0, true, 7);
    AbmcOptions opts;
    opts.num_blocks = 32;
    const auto o = abmc_order(a, opts);
    const auto permuted = permute_symmetric(a, o.perm);
    const auto s = split_triangular(permuted);
    const auto b = test::random_vector(300, 8);

    AlignedVector<double> x_ser(300, 0.0), x_par(300, 0.0);
    for (int sweep = 0; sweep < 3; ++sweep) {
      symgs_serial<double>(s, b, x_ser);
      symgs_parallel<double>(s, o, b, x_par);
    }
    for (index_t i = 0; i < 300; ++i)
      ASSERT_EQ(x_ser[i], x_par[i]) << "row " << i << " threads " << threads;
  }
  set_threads(max_threads());
}

TEST(Symgs, SkipsZeroDiagonalRows) {
  CooMatrix<double> coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 0, 1.0);  // row 1 has no diagonal
  coo.add(2, 2, 4.0);
  const auto s = split_triangular(CsrMatrix<double>::from_coo(coo));
  const AlignedVector<double> b{2.0, 5.0, 8.0};
  AlignedVector<double> x{0.0, 7.0, 0.0};
  symgs_serial<double>(s, b, x);
  EXPECT_DOUBLE_EQ(x[1], 7.0);  // untouched
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[2], 2.0);
}

// --------------------------------------------------------------------------
// SELL-C-sigma
// --------------------------------------------------------------------------

TEST(Sell, SpmvMatchesCsr) {
  for (std::uint64_t seed : {1u, 2u}) {
    const auto a = test::random_matrix(200, 7.0, false, seed);
    const auto x = test::random_vector(200, seed + 10);
    AlignedVector<double> y_csr(200), y_sell(200);
    spmv<double>(a, x, y_csr, SpmvExec::kSerial);
    for (index_t chunk : {1, 4, 8, 32}) {
      for (index_t sigma : {1, 64, 200}) {
        const auto sell = SellMatrix<double>::from_csr(a, chunk, sigma);
        sell.spmv(x, y_sell);
        for (index_t i = 0; i < 200; ++i)
          ASSERT_NEAR(y_sell[i], y_csr[i],
                      1e-12 * (1.0 + std::abs(y_csr[i])))
              << "chunk " << chunk << " sigma " << sigma;
      }
    }
  }
}

TEST(Sell, RowCountNotMultipleOfChunk) {
  const auto a = test::random_matrix(37, 5.0, true, 3);  // 37 % 8 != 0
  const auto sell = SellMatrix<double>::from_csr(a, 8, 16);
  const auto x = test::random_vector(37, 4);
  AlignedVector<double> y_csr(37), y_sell(37);
  spmv<double>(a, x, y_csr, SpmvExec::kSerial);
  sell.spmv(x, y_sell);
  test::expect_near_rel(y_sell, y_csr, 1e-12);
}

TEST(Sell, SigmaSortingReducesPadding) {
  // Strongly skewed row lengths: one long row per 64 rows.
  CooMatrix<double> coo(256, 256);
  Rng rng(9);
  for (index_t i = 0; i < 256; ++i) {
    coo.add(i, i, 1.0);
    const index_t extras = (i % 64 == 0) ? 60 : 2;
    for (index_t e = 0; e < extras; ++e) {
      const auto j = static_cast<index_t>(rng.next_below(256));
      if (j != i) coo.add(i, j, 0.5);
    }
  }
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto unsorted = SellMatrix<double>::from_csr(a, 8, 1);
  const auto sorted = SellMatrix<double>::from_csr(a, 8, 256);
  EXPECT_LT(sorted.padding_factor(), unsorted.padding_factor());
  EXPECT_GE(sorted.padding_factor(), 1.0);
}

TEST(Sell, UniformRowsHaveNoPadding) {
  // A box stencil interior is uniform; padding only from boundaries.
  const auto a = gen::make_laplacian_2d(32, 32);
  const auto sell = SellMatrix<double>::from_csr(a, 8, 1024);
  EXPECT_LT(sell.padding_factor(), 1.10);
}

TEST(Sell, PreservesNnzAndShape) {
  const auto a = test::random_matrix(100, 6.0, false, 11);
  const auto sell = SellMatrix<double>::from_csr(a, 16, 32);
  EXPECT_EQ(sell.rows(), a.rows());
  EXPECT_EQ(sell.cols(), a.cols());
  EXPECT_EQ(sell.nnz(), a.nnz());
  EXPECT_GE(sell.padded_size(), static_cast<std::size_t>(a.nnz()));
}

// --------------------------------------------------------------------------
// Complex-coefficient SSpMV
// --------------------------------------------------------------------------

TEST(ComplexPolynomial, MatchesSeparateRealEvaluations) {
  const auto a = test::random_matrix(120, 6.0, true, 13);
  auto plan = MpkPlan::build(a);
  const auto x = test::random_vector(120, 14);

  using cd = std::complex<double>;
  const std::vector<cd> coeffs{cd(1.0, 2.0), cd(-0.5, 0.25), cd(0.0, 1.0)};

  AlignedVector<cd> y(120);
  plan.polynomial(std::span<const cd>(coeffs), x, y);

  // Reference: evaluate real and imaginary coefficient vectors apart.
  AlignedVector<double> cre(3), cim(3);
  for (int i = 0; i < 3; ++i) {
    cre[i] = coeffs[i].real();
    cim[i] = coeffs[i].imag();
  }
  AlignedVector<double> yre(120), yim(120);
  MpkWorkspace<double> mws;
  mpk_polynomial<double>(a, cre, x, yre, mws);
  mpk_polynomial<double>(a, cim, x, yim, mws);
  for (index_t i = 0; i < 120; ++i) {
    EXPECT_NEAR(y[i].real(), yre[i], 1e-9 * (1.0 + std::abs(yre[i])));
    EXPECT_NEAR(y[i].imag(), yim[i], 1e-9 * (1.0 + std::abs(yim[i])));
  }
}

TEST(ComplexPolynomial, WorksWithoutReorder) {
  const auto a = gen::make_laplacian_2d(10, 10);
  PlanOptions opts;
  opts.reorder = false;
  opts.parallel = false;
  auto plan = MpkPlan::build(a, opts);
  const auto x = test::random_vector(100, 15);
  using cd = std::complex<double>;
  const std::vector<cd> coeffs{cd(0.0, 1.0)};  // y = i * x
  AlignedVector<cd> y(100);
  plan.polynomial(std::span<const cd>(coeffs), x, y);
  for (index_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(y[i].real(), 0.0);
    EXPECT_DOUBLE_EQ(y[i].imag(), x[i]);
  }
}

}  // namespace
}  // namespace fbmpk
