// Golden-file oracle tests (PR 4): the exact serial scalar result of
// y = A^k x for three structurally distinct suite matrices is committed
// as text vectors under tests/golden/. Any change to the sweep
// pipeline, the reorderer, the suite generators or the RNG that alters
// a single output bit fails here — the files pin the end-to-end
// numerics, not just internal invariants.
//
// Regenerate (after an *intentional* numerical change) with:
//   FBMPK_REGEN_GOLDEN=1 ./fbmpk_tests --gtest_filter='GoldenOracle.*'
// and commit the rewritten .vec files alongside the change.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "core/plan.hpp"
#include "gen/suite.hpp"
#include "kernels/dispatch.hpp"
#include "sparse/vector_io.hpp"
#include "test_util.hpp"

#ifndef FBMPK_TEST_GOLDEN_DIR
#error "FBMPK_TEST_GOLDEN_DIR must point at tests/golden"
#endif

namespace fbmpk {
namespace {

struct GoldenCase {
  const char* name;
  double scale;
};

// Small scales keep the committed vectors a few thousand entries while
// exercising a FEM mesh, a circuit network and an unsymmetric digraph.
constexpr GoldenCase kCases[] = {
    {"cant", 0.03}, {"G3_circuit", 0.04}, {"cage14", 0.04}};
constexpr int kPowers[] = {4, 16};
constexpr std::uint64_t kXSeed = 0x60f1d;

std::string golden_path(const std::string& name, int k) {
  return std::string(FBMPK_TEST_GOLDEN_DIR) + "/" + name + "_k" +
         std::to_string(k) + ".vec";
}

AlignedVector<double> oracle_power(const CsrMatrix<double>& a, int k) {
  PlanOptions o;
  o.parallel = false;
  auto plan = MpkPlan::build(a, o);
  const auto x = test::random_vector(a.rows(), kXSeed);
  AlignedVector<double> y(x.size());
  plan.power(x, k, y);
  return y;
}

/// True when this build contracts `a*b + c` into a fused multiply-add
/// (e.g. GCC's default `-ffp-contract=fast` with an FMA-capable
/// `-march`). Probe: pick a so fl(a·a) loses low product bits; the
/// contracted form keeps them through the subtraction, the separately
/// rounded form (forced via a volatile) does not.
///   a = 1 + 2^-30, a·a = 1 + 2^-29 + 2^-60
///   fl(a·a) - 1 = 2^-29          (the 2^-60 tail rounds away)
///   fma(a,a,-1) = 2^-29 + 2^-60  (exact, representable)
bool build_contracts_fma() {
  volatile double av = 1.0 + std::ldexp(1.0, -30);
  const double a1 = av;
  volatile double prod = a1 * a1;  // separately rounded product
  const double unfused = prod - 1.0;
  // Fresh volatile load: a2*a2 is a distinct value, so CSE can't reuse
  // the rounded product above and the multiply feeds the subtraction
  // directly — a contraction candidate.
  const double a2 = av;
  const double maybe_fused = a2 * a2 - 1.0;
  return maybe_fused != unfused;
}

TEST(GoldenOracle, SerialScalarPowerMatchesCommittedVectors) {
  const bool regen = std::getenv("FBMPK_REGEN_GOLDEN") != nullptr;
  // The committed vectors pin the bits of the non-contracted default
  // build. A build that fuses multiply-adds (the CI `simd` job's
  // -march=x86-64-v3, for one) legitimately produces different — not
  // wrong — bits, so the cross-build comparison is meaningless there;
  // in-build reproducibility is what the bitwise and property suites
  // assert, and they run under every build. Refuse to regenerate from
  // a contracting build for the same reason.
  if (build_contracts_fma())
    GTEST_SKIP() << "build contracts a*b+c into fma; golden vectors pin "
                    "the non-contracted default build";
  for (const GoldenCase& c : kCases) {
    const auto a = gen::make_suite_matrix(c.name, c.scale).matrix;
    for (const int k : kPowers) {
      SCOPED_TRACE(std::string(c.name) + " k=" + std::to_string(k));
      const auto y = oracle_power(a, k);
      const std::string path = golden_path(c.name, k);
      if (regen) {
        write_vector_file(path, y);
        continue;
      }
      const auto want = read_vector_file(path);
      ASSERT_EQ(y.size(), want.size());
      // setprecision(17) round-trips doubles exactly, so the committed
      // text pins the result bit-for-bit.
      for (std::size_t i = 0; i < y.size(); ++i)
        ASSERT_EQ(y[i], want[i]) << "i=" << i;
    }
  }
}

// Level-scheduled golden vectors: the natural-order numerics of the
// level scheduler's engine path, pinned end-to-end (the permutation
// changes each row sum's accumulation order, so these differ from the
// reordered vectors above by design — see docs/PARALLELISM.md). The
// property suite proves every level schedule bitwise-equal to the
// natural serial sweep; this file pins what that sweep computes.
// Regenerate like the serial vectors:
//   FBMPK_REGEN_GOLDEN=1 ./fbmpk_tests --gtest_filter='GoldenOracle.*'
TEST(GoldenOracle, LevelScheduledPowerMatchesCommittedVectors) {
  const bool regen = std::getenv("FBMPK_REGEN_GOLDEN") != nullptr;
  if (build_contracts_fma())
    GTEST_SKIP() << "build contracts a*b+c into fma; golden vectors pin "
                    "the non-contracted default build";
  for (const GoldenCase& c : {GoldenCase{"cant", 0.03},
                              GoldenCase{"G3_circuit", 0.04}}) {
    const auto a = gen::make_suite_matrix(c.name, c.scale).matrix;
    const auto x = test::random_vector(a.rows(), kXSeed);
    const int k = 4;
    SCOPED_TRACE(std::string(c.name) + " levels k=" + std::to_string(k));

    PlanOptions o;
    o.reorder = false;
    o.parallel = true;
    o.scheduler = Scheduler::kLevels;
    o.sweep.sync = SweepSync::kPointToPoint;
    auto plan = MpkPlan::build(a, o);
    AlignedVector<double> y(x.size());
    plan.power(x, k, y);

    const std::string path = std::string(FBMPK_TEST_GOLDEN_DIR) + "/" +
                             c.name + "_levels_k" + std::to_string(k) +
                             ".vec";
    if (regen) {
      write_vector_file(path, y);
      continue;
    }
    const auto want = read_vector_file(path);
    ASSERT_EQ(y.size(), want.size());
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_EQ(y[i], want[i]) << "i=" << i;
  }
}

// The golden files double as an accuracy oracle for every fast / mixed-
// precision configuration: reduced-precision storage on the widest
// available backend with compressed indices must stay within the
// documented bound of the committed exact result.
TEST(GoldenOracle, MixedPrecisionStaysWithinBoundOfGoldenVectors) {
  if (std::getenv("FBMPK_REGEN_GOLDEN") != nullptr)
    GTEST_SKIP() << "regenerating golden files";
  const double eps64 = std::numeric_limits<double>::epsilon();
  for (const GoldenCase& c : kCases) {
    const auto a = gen::make_suite_matrix(c.name, c.scale).matrix;
    const auto x = test::random_vector(a.rows(), kXSeed);

    double anorm = 0.0, xnorm = 0.0;
    index_t mrow = 0;
    for (index_t i = 0; i < a.rows(); ++i) {
      double row = 0.0;
      for (index_t j = a.row_ptr()[i]; j < a.row_ptr()[i + 1]; ++j)
        row += std::abs(a.values()[j]);
      anorm = std::max(anorm, row);
      mrow = std::max(mrow, a.row_nnz(i));
    }
    for (double v : x) xnorm = std::max(xnorm, std::abs(v));

    for (const int k : kPowers) {
      const auto want = read_vector_file(golden_path(c.name, k));
      for (const ValuePrecision prec :
           {ValuePrecision::kFp32, ValuePrecision::kSplit}) {
        SCOPED_TRACE(std::string(c.name) + " k=" + std::to_string(k) +
                     " precision=" + precision_name(prec));
        PlanOptions o;
        o.parallel = false;
        o.kernel_backend = resolve_backend(KernelBackend::kAuto);
        o.index_compress = true;
        o.value_precision = prec;
        auto plan = MpkPlan::build(a, o);
        AlignedVector<double> y(x.size());
        plan.power(x, k, y);

        const double eps_prec =
            prec == ValuePrecision::kFp32 ? 0x1.0p-24 : 0x1.0p-48;
        const double bound = 8.0 * k *
                             (static_cast<double>(mrow) * eps64 + eps_prec) *
                             std::pow(anorm, k) * xnorm;
        ASSERT_EQ(y.size(), want.size());
        for (std::size_t i = 0; i < y.size(); ++i)
          ASSERT_LE(std::abs(y[i] - want[i]), bound) << "i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace fbmpk
