// Tests for the three-term-recurrence FBMPK generalization.
#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "gen/stencil.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/fbmpk_recurrence.hpp"
#include "kernels/spmv.hpp"
#include "reorder/abmc.hpp"
#include "sparse/split.hpp"
#include "support/threading.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

// Reference: evaluate the recurrence with plain SpMVs.
std::vector<AlignedVector<double>> reference_recurrence(
    const CsrMatrix<double>& a,
    std::span<const RecurrenceStep<double>> steps,
    std::span<const double> x0) {
  const index_t n = a.rows();
  std::vector<AlignedVector<double>> xs;
  xs.emplace_back(x0.begin(), x0.end());
  AlignedVector<double> ax(static_cast<std::size_t>(n));
  for (std::size_t p = 1; p <= steps.size(); ++p) {
    const auto& prev = xs[p - 1];
    spmv<double>(a, prev, ax, SpmvExec::kSerial);
    AlignedVector<double> next(static_cast<std::size_t>(n));
    const auto& st = steps[p - 1];
    for (index_t i = 0; i < n; ++i) {
      next[i] = st.alpha * ax[i] + st.beta * prev[i];
      if (p >= 2) next[i] += st.gamma * xs[p - 2][i];
    }
    xs.push_back(std::move(next));
  }
  return xs;
}

std::vector<RecurrenceStep<double>> random_steps(int k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<RecurrenceStep<double>> steps(static_cast<std::size_t>(k));
  for (auto& s : steps) {
    s.alpha = rng.next_double(0.5, 1.5);
    s.beta = rng.next_double(-0.5, 0.5);
    s.gamma = rng.next_double(-0.5, 0.5);
  }
  return steps;
}

class RecurrenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RecurrenceTest, MatchesReferenceAtEveryStep) {
  const int k = GetParam();
  const auto a = test::random_matrix(150, 6.0, false, 51);
  const auto x = test::random_vector(150, 52);
  const auto s = split_triangular(a);
  const auto steps = random_steps(k, 53);
  const auto ref = reference_recurrence(a, steps, x);

  std::vector<AlignedVector<double>> got(
      k + 1, AlignedVector<double>(150, 0.0));
  FbWorkspace<double> ws;
  fbmpk_recurrence_sweep<double>(
      s, steps, x, ws,
      [&](int p, index_t i, double v) { got[p][i] = v; });
  for (int p = 1; p <= k; ++p)
    test::expect_near_rel(got[p], ref[p], 1e-10 * std::pow(4.0, p),
                          "recurrence step");
}

INSTANTIATE_TEST_SUITE_P(Steps, RecurrenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Recurrence, MonomialCoefficientsReduceToFbmpkBitwise) {
  const auto a = test::random_matrix(200, 8.0, true, 55);
  const auto x = test::random_vector(200, 56);
  const auto s = split_triangular(a);
  for (int k : {2, 5}) {
    const std::vector<RecurrenceStep<double>> steps(
        static_cast<std::size_t>(k), RecurrenceStep<double>{1.0, 0.0, 0.0});
    AlignedVector<double> y_rec(200), y_fb(200);
    FbWorkspace<double> w1, w2;
    fbmpk_recurrence<double>(s, steps, x, y_rec, w1);
    fbmpk_power<double>(s, x, k, y_fb, w2);
    for (index_t i = 0; i < 200; ++i)
      ASSERT_EQ(y_rec[i], y_fb[i]) << "k=" << k << " i=" << i;
  }
}

TEST(Recurrence, ChebyshevBasisIsBounded) {
  // Chebyshev polynomials of a matrix with spectrum inside the mapped
  // interval stay bounded (|T_p| <= 1 on [-1, 1]) — the numerical
  // stability property the recurrence kernel exists for.
  const auto a = gen::make_laplacian_2d(15, 15);
  const index_t n = a.rows();
  // Gershgorin interval [lo, hi].
  double hi = 0.0, lo = 1e300;
  for (index_t i = 0; i < n; ++i) {
    double center = 0.0, radius = 0.0;
    for (index_t e = a.row_ptr()[i]; e < a.row_ptr()[i + 1]; ++e) {
      if (a.col_idx()[e] == i)
        center = a.values()[e];
      else
        radius += std::abs(a.values()[e]);
    }
    hi = std::max(hi, center + radius);
    lo = std::min(lo, center - radius);
  }
  // Map spectrum to [-1, 1]: B = (2A - (hi+lo)I) / (hi-lo).
  // T_1(B) x = B x; T_{p+1} = 2 B T_p - T_{p-1}. In terms of A:
  //   B x = (2/(hi-lo)) A x - ((hi+lo)/(hi-lo)) x.
  const double sa = 2.0 / (hi - lo);
  const double sb = -(hi + lo) / (hi - lo);
  const int k = 12;
  std::vector<RecurrenceStep<double>> steps;
  steps.push_back({sa, sb, 0.0});  // T_1 = B x0 (with T_{-1} slot zero)
  for (int p = 2; p <= k; ++p) steps.push_back({2 * sa, 2 * sb, -1.0});

  const auto s = split_triangular(a);
  AlignedVector<double> x(static_cast<std::size_t>(n), 1.0);
  double max_abs = 0.0;
  FbWorkspace<double> ws;
  fbmpk_recurrence_sweep<double>(
      s, std::span<const RecurrenceStep<double>>(steps), x, ws,
      [&](int, index_t, double v) {
        max_abs = std::max(max_abs, std::abs(v));
      });
  // ||T_p(B) x||_inf <= ||x||_inf * kappa-ish bound; with spectrum in
  // [-1,1] the iterates must not blow up (monomial powers of A would
  // reach ~hi^12 ~ 1e9 here).
  EXPECT_LT(max_abs, 50.0);
}

TEST(Recurrence, ParallelBitwiseEqualsSerial) {
  for (int threads : {1, 4}) {
    set_threads(threads);
    const auto a = test::random_matrix(300, 7.0, true, 61);
    AbmcOptions aopts;
    aopts.num_blocks = 32;
    const auto o = abmc_order(a, aopts);
    const auto permuted = permute_symmetric(a, o.perm);
    const auto s = split_triangular(permuted);
    const auto x = test::random_vector(300, 62);
    const auto steps = random_steps(6, 63);

    AlignedVector<double> y_par(300, 0.0), y_ser(300, 0.0);
    FbWorkspace<double> wp, wsr;
    fbmpk_recurrence_parallel_sweep<double>(
        s, o, steps, x, wp, [&](int p, index_t i, double v) {
          if (p == 6) y_par[i] = v;
        });
    fbmpk_recurrence<double>(s, steps, x, y_ser, wsr);
    for (index_t i = 0; i < 300; ++i)
      ASSERT_EQ(y_par[i], y_ser[i]) << "threads " << threads;
  }
  set_threads(max_threads());
}

TEST(Recurrence, GammaOnFirstStepIsHarmless) {
  // x_{-1} = 0, so gamma_1 must have no effect.
  const auto a = test::random_matrix(50, 5.0, true, 71);
  const auto x = test::random_vector(50, 72);
  const auto s = split_triangular(a);
  std::vector<RecurrenceStep<double>> with{{1.0, 0.5, 123.0}};
  std::vector<RecurrenceStep<double>> without{{1.0, 0.5, 0.0}};
  AlignedVector<double> y1(50), y2(50);
  FbWorkspace<double> w1, w2;
  fbmpk_recurrence<double>(s, with, x, y1, w1);
  fbmpk_recurrence<double>(s, without, x, y2, w2);
  for (index_t i = 0; i < 50; ++i) ASSERT_EQ(y1[i], y2[i]);
}

TEST(Recurrence, PlanApiMatchesDirectKernel) {
  const auto a = test::random_matrix(180, 6.0, true, 81);
  const auto x = test::random_vector(180, 82);
  const auto steps = random_steps(5, 83);

  // Direct serial kernel on the raw split.
  const auto s = split_triangular(a);
  AlignedVector<double> y_direct(180);
  FbWorkspace<double> ws;
  fbmpk_recurrence<double>(s, steps, x, y_direct, ws);

  // Through the plan (ABMC parallel, permutation handled internally).
  auto plan = MpkPlan::build(a);
  AlignedVector<double> y_plan(180);
  plan.recurrence(steps, x, y_plan);
  test::expect_near_rel(y_plan, y_direct, 1e-9);

  // Serial no-reorder plan must agree bitwise with the direct kernel.
  PlanOptions sopts;
  sopts.reorder = false;
  sopts.parallel = false;
  auto splan = MpkPlan::build(a, sopts);
  AlignedVector<double> y_splan(180);
  splan.recurrence(steps, x, y_splan);
  for (index_t i = 0; i < 180; ++i) ASSERT_EQ(y_splan[i], y_direct[i]);
}

TEST(Recurrence, PlanApiRejectsEmptySteps) {
  const auto a = gen::make_laplacian_2d(5, 5);
  auto plan = MpkPlan::build(a);
  AlignedVector<double> x(25, 1.0), y(25);
  EXPECT_THROW(plan.recurrence({}, x, y), Error);
}

}  // namespace
}  // namespace fbmpk
