// PackedTriangleIndex — band-compressed column sidecar (PR 3).
#include "sparse/packed_tri.hpp"

#include <gtest/gtest.h>

#include "gen/kkt.hpp"
#include "gen/stencil.hpp"
#include "perf/traffic_model.hpp"
#include "sparse/split.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

// Decode every row through row() and compare against the CSR stream.
void expect_decodes_exactly(const PackedTriangleIndex& p,
                            const CsrMatrix<double>& m) {
  ASSERT_EQ(p.rows(), m.rows());
  ASSERT_EQ(p.nnz(), m.nnz());
  for (index_t i = 0; i < m.rows(); ++i) {
    const index_t lo = m.row_ptr()[i];
    const index_t len = m.row_nnz(i);
    const auto v = p.row(i, lo);
    for (index_t j = 0; j < len; ++j) {
      const index_t decoded =
          v.c16 != nullptr ? v.base + static_cast<index_t>(v.c16[j])
                           : v.c32[j];
      ASSERT_EQ(decoded, m.col_idx()[lo + j])
          << "row " << i << " entry " << j;
    }
  }
  EXPECT_TRUE(p.matches(m.rows(), m.row_ptr().data(), m.col_idx().data()));
}

TEST(PackedTri, DecodesStencilExactly) {
  const auto a = gen::make_laplacian_2d(37, 23);
  const auto p = PackedTriangleIndex::build(a);
  expect_decodes_exactly(p, a);
}

TEST(PackedTri, DecodesRandomExactly) {
  const auto a = test::random_matrix(300, 9.0, /*symmetric=*/false, 77);
  expect_decodes_exactly(PackedTriangleIndex::build(a), a);
}

TEST(PackedTri, DecodesKktExactly) {
  const auto a = gen::make_kkt_saddle(8, 7, 6, {});
  expect_decodes_exactly(PackedTriangleIndex::build(a), a);
}

TEST(PackedTri, DecodesSplitTrianglesExactly) {
  const auto a = test::random_matrix(257, 7.0, /*symmetric=*/true, 13);
  const auto s = split_triangular(a);
  expect_decodes_exactly(PackedTriangleIndex::build(s.lower), s.lower);
  expect_decodes_exactly(PackedTriangleIndex::build(s.upper), s.upper);
}

TEST(PackedTri, BandedMatrixCompressesEveryBand) {
  // A 5-point stencil on a narrow grid: every band's column span is far
  // below 2^16, so every band must be narrow and the index stream close
  // to 2 bytes/nnz (u16 pool + ~17 bytes of metadata per 64-row band).
  const auto a = gen::make_laplacian_2d(50, 40);
  const auto p = PackedTriangleIndex::build(a);
  EXPECT_EQ(p.num_wide_bands(), 0);
  EXPECT_LT(p.bytes_per_nnz(), 2.5);
  EXPECT_LT(p.index_bytes(),
            static_cast<std::size_t>(a.nnz()) * sizeof(index_t));
}

TEST(PackedTri, WideSpreadFallsBackToFullWidth) {
  // Rows that reference both column 0 and a column > 2^16 away cannot
  // be narrow; the band must fall back losslessly to full-width.
  const index_t n = 70000;
  AlignedVector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);
  AlignedVector<index_t> ci;
  AlignedVector<double> va;
  for (index_t i = 0; i < n; ++i) {
    ci.push_back(0);
    va.push_back(1.0);
    if (i > 0) {
      ci.push_back(i);
      va.push_back(2.0);
    }
    rp[i + 1] = static_cast<index_t>(ci.size());
  }
  const CsrMatrix<double> a(n, n, std::move(rp), std::move(ci),
                            std::move(va));
  const auto p = PackedTriangleIndex::build(a);
  EXPECT_GT(p.num_wide_bands(), 0);
  expect_decodes_exactly(p, a);
  // Early bands (span < 2^16) still compress.
  EXPECT_LT(p.num_wide_bands(), p.num_bands());
}

TEST(PackedTri, ZeroRowsAndEmptyBandsAreHandled) {
  // Block-diagonal-ish matrix with many empty rows.
  const index_t n = 200;
  AlignedVector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);
  AlignedVector<index_t> ci;
  AlignedVector<double> va;
  for (index_t i = 0; i < n; ++i) {
    if (i % 3 == 0) {
      ci.push_back(i);
      va.push_back(1.0);
    }
    rp[i + 1] = static_cast<index_t>(ci.size());
  }
  const CsrMatrix<double> a(n, n, std::move(rp), std::move(ci),
                            std::move(va));
  expect_decodes_exactly(PackedTriangleIndex::build(a), a);
}

TEST(PackedTri, EmptyMatrix) {
  const PackedTriangleIndex p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.nnz(), 0);
  EXPECT_DOUBLE_EQ(p.bytes_per_nnz(), static_cast<double>(sizeof(index_t)));
}

TEST(PackedTri, BandRowsMustBePowerOfTwo) {
  const auto a = gen::make_laplacian_2d(8, 8);
  EXPECT_THROW(PackedTriangleIndex::build(a, 48), Error);
  EXPECT_NO_THROW(PackedTriangleIndex::build(a, 32));
  expect_decodes_exactly(PackedTriangleIndex::build(a, 1), a);
  expect_decodes_exactly(PackedTriangleIndex::build(a, 256), a);
}

TEST(PackedTri, MatchesRejectsTamperedContent) {
  const auto a = gen::make_laplacian_2d(20, 20);
  auto p = PackedTriangleIndex::build(a);
  ASSERT_TRUE(p.matches(a.rows(), a.row_ptr().data(), a.col_idx().data()));

  // Perturb one decoded column: rebuild from raw with a flipped u16.
  auto raw = p.to_raw();
  ASSERT_FALSE(raw.col16.empty());
  raw.col16[raw.col16.size() / 2] ^= 1;
  PackedTriangleIndex tampered;
  ASSERT_TRUE(PackedTriangleIndex::from_raw(std::move(raw), tampered));
  EXPECT_FALSE(
      tampered.matches(a.rows(), a.row_ptr().data(), a.col_idx().data()));
}

TEST(PackedTri, FromRawRejectsStructuralCorruption) {
  const auto a = gen::make_laplacian_2d(20, 20);
  const auto p = PackedTriangleIndex::build(a);

  {
    auto raw = p.to_raw();
    raw.band_shift = 30;  // out of the supported range
    PackedTriangleIndex out;
    EXPECT_FALSE(PackedTriangleIndex::from_raw(std::move(raw), out));
  }
  {
    auto raw = p.to_raw();
    raw.band_wide.pop_back();  // band-array size mismatch
    PackedTriangleIndex out;
    EXPECT_FALSE(PackedTriangleIndex::from_raw(std::move(raw), out));
  }
  {
    auto raw = p.to_raw();
    raw.col16.pop_back();  // pool size no longer matches nnz
    PackedTriangleIndex out;
    EXPECT_FALSE(PackedTriangleIndex::from_raw(std::move(raw), out));
  }
  {
    auto raw = p.to_raw();
    if (!raw.band_off.empty()) raw.band_off.back() = 1u << 30;  // OOB offset
    PackedTriangleIndex out;
    EXPECT_FALSE(PackedTriangleIndex::from_raw(std::move(raw), out));
  }
}

TEST(PackedTri, TrafficModelReportsReducedBytes) {
  const auto a = gen::make_laplacian_2d(60, 60);
  const auto p = PackedTriangleIndex::build(a);
  ASSERT_LT(p.bytes_per_nnz(), static_cast<double>(sizeof(index_t)));
  const auto shape = perf::MatrixShape::of(a);
  const auto plain = perf::fbmpk_traffic(shape, 8);
  const auto packed =
      perf::fbmpk_traffic_compressed(shape, 8, p.bytes_per_nnz());
  EXPECT_LT(packed.matrix_bytes, plain.matrix_bytes);
  EXPECT_EQ(packed.vector_bytes, plain.vector_bytes);
  // Passing the full width reproduces the plain estimate exactly.
  const auto same = perf::fbmpk_traffic_compressed(
      shape, 8, static_cast<double>(sizeof(index_t)));
  EXPECT_EQ(same.matrix_bytes, plain.matrix_bytes);
}

TEST(PackedTri, RoundTripsThroughRaw) {
  const auto a = test::random_matrix(300, 8.0, /*symmetric=*/false, 5);
  const auto p = PackedTriangleIndex::build(a);
  PackedTriangleIndex q;
  ASSERT_TRUE(PackedTriangleIndex::from_raw(p.to_raw(), q));
  expect_decodes_exactly(q, a);
  EXPECT_EQ(q.index_bytes(), p.index_bytes());
}

}  // namespace
}  // namespace fbmpk
