// Edge-case and consistency tests across modules: degenerate matrices,
// tracer transparency (tracing must not change numerics), float
// instantiations, and robustness of the I/O layer.
#include <gtest/gtest.h>

#include <sstream>

#include "core/plan.hpp"
#include "gen/stencil.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/mpk_baseline.hpp"
#include "perf/cache_sim.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/ops.hpp"
#include "sparse/split.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

TEST(EdgeCases, MatrixWithEmptyRowsThroughFullPipeline) {
  // Rows 1 and 3 are completely empty (no diagonal either).
  CooMatrix<double> coo(5, 5);
  coo.add(0, 0, 2.0);
  coo.add(2, 0, 1.0);
  coo.add(2, 2, 1.5);
  coo.add(2, 4, 0.5);
  coo.add(4, 2, -1.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto s = split_triangular(a);
  const auto x = test::random_vector(5, 1);
  FbWorkspace<double> ws;
  AlignedVector<double> y(5);
  for (int k : {1, 2, 3, 4}) {
    fbmpk_power<double>(s, x, k, y, ws);
    const auto ref = test::dense_power_reference(a, x, k);
    test::expect_near_rel(y, ref, 1e-12);
  }
}

TEST(EdgeCases, SingleRowMatrix) {
  CooMatrix<double> coo(1, 1);
  coo.add(0, 0, 3.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  auto plan = MpkPlan::build(a);
  const AlignedVector<double> x{2.0};
  AlignedVector<double> y(1);
  plan.power(x, 4, y);
  EXPECT_DOUBLE_EQ(y[0], 81.0 * 2.0);
}

TEST(EdgeCases, ZeroDiagonalMatrix) {
  // Anti-diagonal permutation-like matrix: no stored diagonal at all.
  CooMatrix<double> coo(4, 4);
  coo.add(0, 3, 1.0);
  coo.add(1, 2, 1.0);
  coo.add(2, 1, 1.0);
  coo.add(3, 0, 1.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  auto plan = MpkPlan::build(a);
  const AlignedVector<double> x{1.0, 2.0, 3.0, 4.0};
  AlignedVector<double> y(4);
  plan.power(x, 2, y);  // anti-diagonal squared = identity
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(EdgeCases, FullyDenseSmallMatrix) {
  CooMatrix<double> coo(8, 8);
  Rng rng(5);
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 8; ++j) coo.add(i, j, rng.next_double(-1, 1));
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto s = split_triangular(a);
  const auto x = test::random_vector(8, 6);
  FbWorkspace<double> ws;
  AlignedVector<double> y(8);
  fbmpk_power<double>(s, x, 5, y, ws);
  const auto ref = test::dense_power_reference(a, x, 5);
  test::expect_near_rel(y, ref, 1e-10);
}

TEST(EdgeCases, HighPowerStaysFinite) {
  // Scaled so the spectral radius is < 1: A^40 x must shrink, not blow
  // up or produce NaN.
  auto a = test::random_matrix(50, 5.0, true, 7);
  for (auto& v : a.values_mutable()) v *= 0.05;
  const auto s = split_triangular(a);
  const auto x = test::random_vector(50, 8);
  FbWorkspace<double> ws;
  AlignedVector<double> y(50);
  fbmpk_power<double>(s, x, 40, y, ws);
  for (double v : y) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::abs(v), 1.0);
  }
}

TEST(TracerConsistency, TracedSpmvProducesIdenticalValues) {
  const auto a = test::random_matrix(200, 6.0, false, 9);
  const auto x = test::random_vector(200, 10);
  AlignedVector<double> y_plain(200), y_traced(200);
  spmv<double>(a, x, y_plain, SpmvExec::kSerial);
  perf::CacheHierarchy sim({perf::CacheConfig{8192, 4, 64}});
  perf::CacheTracer tr{&sim};
  spmv_traced<double>(a, x, y_traced, tr, SpmvExec::kSerial);
  for (index_t i = 0; i < 200; ++i) ASSERT_EQ(y_plain[i], y_traced[i]);
  EXPECT_GT(sim.dram_read_bytes(), 0u);
}

TEST(TracerConsistency, TracedFbmpkProducesIdenticalValues) {
  const auto a = test::random_matrix(150, 7.0, true, 11);
  const auto s = split_triangular(a);
  const auto x = test::random_vector(150, 12);
  FbWorkspace<double> w1, w2;
  AlignedVector<double> y_plain(150), y_traced(150, 0.0);

  fbmpk_power<double>(s, x, 6, y_plain, w1);
  perf::CacheHierarchy sim({perf::CacheConfig{8192, 4, 64}});
  perf::CacheTracer tr{&sim};
  fbmpk_sweep_btb(
      s, std::span<const double>(x), 6, w2,
      [&](int p, index_t i, double v) {
        if (p == 6) y_traced[i] = v;
      },
      tr);
  for (index_t i = 0; i < 150; ++i) ASSERT_EQ(y_plain[i], y_traced[i]);
}

TEST(TracerConsistency, ParallelSpmvRejectsTracing) {
  const auto a = test::random_matrix(20, 3.0, true, 13);
  const auto x = test::random_vector(20, 14);
  AlignedVector<double> y(20);
  perf::CacheHierarchy sim({perf::CacheConfig{4096, 4, 64}});
  perf::CacheTracer tr{&sim};
  EXPECT_THROW(spmv_traced<double>(a, x, y, tr, SpmvExec::kParallel), Error);
}

TEST(FloatSupport, FbmpkPowerInSinglePrecision) {
  CooMatrix<float> coo(30, 30);
  Rng rng(15);
  for (index_t i = 0; i < 30; ++i) {
    coo.add(i, i, 2.0f);
    const auto j = static_cast<index_t>(rng.next_below(30));
    if (j != i) coo.add(i, j, static_cast<float>(rng.next_double(-0.1, 0.1)));
  }
  const auto a = CsrMatrix<float>::from_coo(coo);
  const auto s = split_triangular(a);
  AlignedVector<float> x(30, 1.0f), y_fb(30), y_base(30);
  FbWorkspace<float> fws;
  MpkWorkspace<float> mws;
  fbmpk_power<float>(s, x, 4, y_fb, fws);
  mpk_power<float>(a, x, 4, y_base, mws);
  for (index_t i = 0; i < 30; ++i)
    EXPECT_NEAR(y_fb[i], y_base[i], 1e-3f * (1.0f + std::abs(y_base[i])));
}

TEST(MmIo, HandlesWindowsLineEndings) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\r\n"
      "2 2 2\r\n"
      "1 1 1.5\r\n"
      "2 2 2.5\r\n");
  const auto a = CsrMatrix<double>::from_coo(read_matrix_market(in));
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 2.5);
}

TEST(MmIo, ScientificNotationValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.5e-3\n"
      "2 2 -2.5E+2\n");
  const auto a = CsrMatrix<double>::from_coo(read_matrix_market(in));
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.5e-3);
  EXPECT_DOUBLE_EQ(a.at(1, 1), -250.0);
}

TEST(CacheSimLru, EvictsLeastRecentlyUsedWay) {
  // One set, 2 ways, 64 B lines: a, b fill the set; touching a again
  // then loading c must evict b (LRU), so a still hits and b misses.
  perf::CacheHierarchy sim({perf::CacheConfig{128, 2, 64}});
  alignas(64) static double slots[8 * 3];  // three distinct lines
  auto addr = [&](int line) {
    return reinterpret_cast<std::uintptr_t>(&slots[8 * line]);
  };
  sim.access(addr(0), false);  // miss
  sim.access(addr(1), false);  // miss
  sim.access(addr(0), false);  // hit; makes line 1 the LRU
  sim.access(addr(2), false);  // miss; evicts line 1
  sim.access(addr(0), false);  // hit
  sim.access(addr(1), false);  // miss (was evicted)
  EXPECT_EQ(sim.level_stats(0).hits, 2u);
  EXPECT_EQ(sim.level_stats(0).misses, 4u);
}

TEST(PlanEdge, PowerAllWithKZero) {
  const auto a = gen::make_laplacian_2d(4, 4);
  auto plan = MpkPlan::build(a);
  const auto x = test::random_vector(16, 20);
  AlignedVector<double> out(16);
  plan.power_all(x, 0, out);
  EXPECT_TRUE(std::equal(x.begin(), x.end(), out.begin()));
}

TEST(PlanEdge, ConstantCoefficientPolynomial) {
  const auto a = gen::make_laplacian_2d(5, 5);
  auto plan = MpkPlan::build(a);
  const auto x = test::random_vector(25, 21);
  AlignedVector<double> y(25);
  plan.polynomial(AlignedVector<double>{3.0}, x, y);  // y = 3 x
  for (index_t i = 0; i < 25; ++i) EXPECT_DOUBLE_EQ(y[i], 3.0 * x[i]);
}

}  // namespace
}  // namespace fbmpk
