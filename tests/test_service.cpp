// MpkService / PlanCache: the serving layer's resilience contract
// (docs/SERVICE.md). Every request must terminate with a correct
// result or a typed error — and a degraded-rung result must be
// bitwise identical to the serial oracle for exact-mode plans.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "gen/stencil.hpp"
#include "service/plan_cache.hpp"
#include "service/service.hpp"
#include "support/fault_inject.hpp"
#include "test_util.hpp"

namespace fbmpk::service {
namespace {

/// Runs every case with a clean fault injector on both sides.
class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Injector::instance().reset(); }
  void TearDown() override { fault::Injector::instance().reset(); }
};

AlignedVector<double> test_input(index_t n) {
  AlignedVector<double> x(static_cast<std::size_t>(n));
  test::Xorshift64 rng(42);
  for (auto& v : x) v = 2.0 * rng.uniform() - 1.0;
  return x;
}

/// Serial-path reference through the same plan options: the ladder's
/// correctness oracle (all rungs issue identical per-row kernels).
AlignedVector<double> serial_oracle(const CsrMatrix<double>& a,
                                    std::span<const double> x, int k,
                                    const PlanOptions& po) {
  MpkPlan plan = MpkPlan::build(a, po);
  MpkPlan::Workspace ws;
  AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
  const Status st = plan.try_power(x, k, y, ws, ExecPath::kSerial);
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().what());
  return y;
}

void expect_bitwise_equal(std::span<const double> got,
                          std::span<const double> want) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(double)),
            0);
}

TEST_F(ServiceTest, LruEvictionOrderIsDeterministic) {
  PlanCache cache(2);
  const auto a = gen::make_laplacian_2d(4, 4);
  const auto b = gen::make_laplacian_2d(5, 4);
  const auto c = gen::make_laplacian_2d(6, 4);
  const std::uint64_t ka = fingerprint(a), kb = fingerprint(b),
                      kc = fingerprint(c);
  ASSERT_NE(ka, kb);
  ASSERT_NE(kb, kc);

  cache.acquire(ka, [&] { return MpkPlan::build(a); });
  cache.acquire(kb, [&] { return MpkPlan::build(b); });
  EXPECT_EQ(cache.keys_lru_order(), (std::vector<std::uint64_t>{ka, kb}));

  // Touch `a` so `b` becomes least-recently used...
  cache.acquire(ka, [&] { return MpkPlan::build(a); });
  EXPECT_EQ(cache.keys_lru_order(), (std::vector<std::uint64_t>{kb, ka}));

  // ...and inserting `c` must evict exactly `b`.
  cache.acquire(kc, [&] { return MpkPlan::build(c); });
  EXPECT_EQ(cache.keys_lru_order(), (std::vector<std::uint64_t>{ka, kc}));
  EXPECT_EQ(cache.size(), 2u);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.evictions, 1u);
}

TEST_F(ServiceTest, CacheHitServesSecondRequestBitwiseEqual) {
  const auto a = gen::make_laplacian_2d(16, 16);
  const auto x = test_input(a.rows());
  ServiceOptions opts;
  opts.workers = 1;
  MpkService svc(opts);

  AlignedVector<double> y1(static_cast<std::size_t>(a.rows()));
  AlignedVector<double> y2(static_cast<std::size_t>(a.rows()));
  const RequestResult r1 = svc.power(a, x, 3, y1);
  ASSERT_TRUE(r1.status.ok()) << r1.status.error().what();
  EXPECT_FALSE(r1.cache_hit);
  const RequestResult r2 = svc.power(a, x, 3, y2);
  ASSERT_TRUE(r2.status.ok()) << r2.status.error().what();
  EXPECT_TRUE(r2.cache_hit);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.cache.misses, 1u);
  EXPECT_EQ(st.cache.hits, 1u);
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.completed, 2u);

  const auto oracle = serial_oracle(a, x, 3, opts.plan);
  expect_bitwise_equal(y1, oracle);
  expect_bitwise_equal(y2, oracle);
}

TEST_F(ServiceTest, QueueFullRejectsWithTypedOverload) {
  const auto a = gen::make_laplacian_2d(8, 8);
  const auto x = test_input(a.rows());
  MpkService svc;
  fault::Injector::instance().arm(fault::Point::kQueueFull, /*fires=*/1);

  AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
  const RequestResult r = svc.power(a, x, 2, y);
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kOverloaded);
  EXPECT_GE(svc.stats().rejected_overload, 1u);

  // The queue recovered: the next request is served normally.
  const RequestResult r2 = svc.power(a, x, 2, y);
  EXPECT_TRUE(r2.status.ok());
}

TEST_F(ServiceTest, DeadlineExpiryFailsTypedTimeout) {
  const auto a = gen::make_laplacian_2d(40, 40);
  const auto x = test_input(a.rows());
  ServiceOptions opts;
  opts.workers = 1;
  opts.watchdog_interval_seconds = 0.002;
  MpkService svc(opts);

  // Stall the sweep at a few color boundaries so the 20 ms deadline
  // expires mid-sweep; later checkpoints run clean so unwinding after
  // cancellation stays fast.
  fault::Injector::instance().arm(fault::Point::kSweepStall, /*fires=*/3,
                                  /*skip=*/0, /*stall_ms=*/120);
  AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
  RequestOptions ropts;
  ropts.deadline_seconds = 0.02;
  const RequestResult r = svc.power(a, x, 6, y, ropts);
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kTimeout);
  EXPECT_GE(svc.stats().timeouts, 1u);
}

TEST_F(ServiceTest, StuckSweepIsForceCompletedAndPlanQuarantined) {
  const auto a = gen::make_laplacian_2d(40, 40);
  const auto x = test_input(a.rows());
  ServiceOptions opts;
  opts.workers = 1;
  opts.watchdog_interval_seconds = 0.002;
  opts.stuck_grace_seconds = 0.05;
  MpkService svc(opts);

  // One long stall freezes the heartbeat well past the grace period:
  // the watchdog must force-complete the ticket (the caller gets its
  // typed error long before the stall ends) and quarantine the plan.
  // fired() flips just before the sleep begins, so polling it is a
  // deterministic "the sweep is wedged right now" signal that holds
  // regardless of how slowly the plan build runs (e.g. under TSan).
  fault::Injector::instance().arm(fault::Point::kSweepStall, /*fires=*/1,
                                  /*skip=*/0, /*stall_ms=*/1500);
  AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
  const auto id = svc.submit(a, x, 6);
  const auto t_arm = std::chrono::steady_clock::now();
  while (fault::Injector::instance().fired(fault::Point::kSweepStall) < 1) {
    ASSERT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t_arm)
                  .count(),
              10.0)
        << "sweep never reached the stall point";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(svc.cancel(id));
  const auto t0 = std::chrono::steady_clock::now();
  const RequestResult r = svc.wait(id, y);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kCancelled);
  EXPECT_LT(waited, 1.2) << "force-completion must beat the stall";
  EXPECT_EQ(svc.stats().quarantines, 1u);

  // The quarantined plan is never served again: the next request for
  // the same matrix rebuilds from scratch and succeeds.
  fault::Injector::instance().reset();
  const RequestResult r2 = svc.power(a, x, 3, y);
  ASSERT_TRUE(r2.status.ok()) << r2.status.error().what();
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_EQ(svc.stats().cache.misses, 2u);
}

TEST_F(ServiceTest, ExplicitCancelFailsTypedCancelled) {
  const auto a = gen::make_laplacian_2d(40, 40);
  const auto x = test_input(a.rows());
  ServiceOptions opts;
  opts.workers = 1;
  MpkService svc(opts);

  fault::Injector::instance().arm(fault::Point::kSweepStall, /*fires=*/4,
                                  /*skip=*/0, /*stall_ms=*/80);
  const MpkService::RequestId id = svc.submit(a, x, 6);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(svc.cancel(id));

  AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
  const RequestResult r = svc.wait(id, y);
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kCancelled);
  EXPECT_GE(svc.stats().cancelled, 1u);
}

TEST_F(ServiceTest, DegradationLadderFallsToSerialBitwiseEqual) {
  const auto a = gen::make_laplacian_2d(24, 24);
  const auto x = test_input(a.rows());
  ServiceOptions opts;
  opts.workers = 1;
  opts.plan.sweep.sync = SweepSync::kPointToPoint;  // enable the engine rung
  MpkService svc(opts);

  // Two injected scratch-allocation failures knock out the engine and
  // barrier rungs; the serial floor must still produce the exact
  // result.
  fault::Injector::instance().arm(fault::Point::kAlloc, /*fires=*/2);
  AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
  const RequestResult r = svc.power(a, x, 4, y);
  ASSERT_TRUE(r.status.ok()) << r.status.error().what();
  EXPECT_EQ(r.rung, Rung::kSerial);
  EXPECT_EQ(r.degrade_steps, 2);
  expect_bitwise_equal(y, serial_oracle(a, x, 4, opts.plan));

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.degrade_engine_to_barrier, 1u);
  EXPECT_EQ(st.degrade_barrier_to_serial, 1u);

  // The rung is sticky per cached plan: with no faults armed the next
  // request starts straight at the serial floor.
  const RequestResult r2 = svc.power(a, x, 4, y);
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r2.rung, Rung::kSerial);
  EXPECT_EQ(r2.degrade_steps, 0);
}

// The ladder is scheduler-polymorphic (docs/SERVICE.md): on a level-
// scheduled plan the rungs mean level engine -> per-level barriers ->
// serial, with the same step-down accounting and the natural-order
// serial sweep as the bitwise oracle.
TEST_F(ServiceTest, DegradationLadderOnLevelPlanFallsToSerialBitwiseEqual) {
  const auto a = gen::make_laplacian_2d(24, 24);
  const auto x = test_input(a.rows());
  ServiceOptions opts;
  opts.workers = 1;
  opts.plan.scheduler = Scheduler::kLevels;
  opts.plan.reorder = false;
  opts.plan.sweep.sync = SweepSync::kPointToPoint;  // blocked level engine
  MpkService svc(opts);

  fault::Injector::instance().arm(fault::Point::kAlloc, /*fires=*/2);
  AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
  const RequestResult r = svc.power(a, x, 4, y);
  ASSERT_TRUE(r.status.ok()) << r.status.error().what();
  EXPECT_EQ(r.rung, Rung::kSerial);
  EXPECT_EQ(r.degrade_steps, 2);
  expect_bitwise_equal(y, serial_oracle(a, x, 4, opts.plan));

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.degrade_engine_to_barrier, 1u);
  EXPECT_EQ(st.degrade_barrier_to_serial, 1u);

  // No faults: a fresh (uncached) levels plan runs its engine rung and
  // still matches the natural-order serial oracle bitwise.
  fault::Injector::instance().reset();
  const auto b = gen::make_laplacian_2d(23, 23);
  const auto xb = test_input(b.rows());
  AlignedVector<double> yb(static_cast<std::size_t>(b.rows()));
  const RequestResult rb = svc.power(b, xb, 5, yb);
  ASSERT_TRUE(rb.status.ok()) << rb.status.error().what();
  EXPECT_EQ(rb.degrade_steps, 0);
  expect_bitwise_equal(yb, serial_oracle(b, xb, 5, opts.plan));
}

TEST_F(ServiceTest, CorruptCacheEntryIsEvictedAndRebuilt) {
  const auto a = gen::make_laplacian_2d(16, 16);
  const auto x = test_input(a.rows());
  ServiceOptions opts;
  opts.workers = 1;
  MpkService svc(opts);

  AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
  ASSERT_TRUE(svc.power(a, x, 3, y).status.ok());
  ASSERT_TRUE(svc.cache().corrupt_entry(fingerprint(a)));

  // The damaged artifact fails its checksum on rehydration — it is
  // never served; the entry is evicted and rebuilt.
  const RequestResult r = svc.power(a, x, 3, y);
  ASSERT_TRUE(r.status.ok()) << r.status.error().what();
  EXPECT_FALSE(r.cache_hit);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.cache.corrupt_evictions, 1u);
  EXPECT_EQ(st.cache.misses, 2u);
  expect_bitwise_equal(y, serial_oracle(a, x, 3, opts.plan));
}

TEST_F(ServiceTest, InjectedCorruptionFaultTriggersRebuildOnHitPath) {
  const auto a = gen::make_laplacian_2d(16, 16);
  const auto x = test_input(a.rows());
  ServiceOptions opts;
  opts.workers = 1;
  MpkService svc(opts);

  AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
  ASSERT_TRUE(svc.power(a, x, 2, y).status.ok());
  fault::Injector::instance().arm(fault::Point::kCacheCorrupt, /*fires=*/1);
  const RequestResult r = svc.power(a, x, 2, y);
  ASSERT_TRUE(r.status.ok()) << r.status.error().what();
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(svc.stats().cache.corrupt_evictions, 1u);
}

TEST_F(ServiceTest, PrecisionCertificationFailureRebuildsAtFp64) {
  const auto a = gen::make_laplacian_2d(16, 16);
  const auto x = test_input(a.rows());
  ServiceOptions opts;
  opts.workers = 1;
  opts.rebuild_fp64_on_cert_failure = true;
  opts.plan.value_precision = ValuePrecision::kFp32;
  MpkService svc(opts);

  fault::Injector::instance().arm(fault::Point::kPrecisionCertify,
                                  /*fires=*/1);
  AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
  const RequestResult r = svc.power(a, x, 3, y);
  ASSERT_TRUE(r.status.ok()) << r.status.error().what();
  EXPECT_TRUE(r.precision_rebuilt);
  EXPECT_EQ(svc.stats().precision_rebuilds, 1u);

  // The fp64 rebuild serves full-precision results: bitwise equal to
  // a serial fp64 oracle.
  PlanOptions fp64 = opts.plan;
  fp64.value_precision = ValuePrecision::kFp64;
  expect_bitwise_equal(y, serial_oracle(a, x, 3, fp64));
}

TEST_F(ServiceTest, CertificationFailureWithoutOptInFailsTyped) {
  const auto a = gen::make_laplacian_2d(12, 12);
  const auto x = test_input(a.rows());
  ServiceOptions opts;
  opts.workers = 1;
  MpkService svc(opts);

  fault::Injector::instance().arm(fault::Point::kPrecisionCertify,
                                  /*fires=*/1);
  AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
  const RequestResult r = svc.power(a, x, 2, y);
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kNumericalBreakdown);
}

TEST_F(ServiceTest, MismatchedVectorLengthIsRejectedTyped) {
  const auto a = gen::make_laplacian_2d(8, 8);
  AlignedVector<double> x(static_cast<std::size_t>(a.rows()) - 1, 1.0);
  AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
  MpkService svc;
  const RequestResult r = svc.power(a, x, 2, y);
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kInvalidMatrix);
}

// Multi-client hammering: every request must finish with a correct
// result or a typed error, across cache churn (capacity below the
// working set) and concurrent submissions. Runs under the TSan CI job.
TEST_F(ServiceTest, ServiceStressManyClientsTypedOutcomesOnly) {
  std::vector<CsrMatrix<double>> mats;
  mats.push_back(gen::make_laplacian_2d(12, 12));
  mats.push_back(gen::make_laplacian_2d(16, 12));
  mats.push_back(gen::make_laplacian_2d(20, 12));

  ServiceOptions opts;
  opts.workers = 3;
  opts.cache_capacity = 2;  // below the working set: forced churn
  opts.max_queue = 8;
  MpkService svc(opts);

  std::vector<AlignedVector<double>> oracles;
  std::vector<AlignedVector<double>> inputs;
  for (const auto& m : mats) {
    inputs.push_back(test_input(m.rows()));
    oracles.push_back(serial_oracle(m, inputs.back(), 3, opts.plan));
  }

  constexpr int kClients = 4;
  constexpr int kPerClient = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      test::Xorshift64 rng(1000 + static_cast<std::uint64_t>(c));
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t mi = rng.next() % mats.size();
        AlignedVector<double> y(
            static_cast<std::size_t>(mats[mi].rows()));
        const RequestResult r = svc.power(mats[mi], inputs[mi], 3, y);
        if (r.status.ok()) {
          if (std::memcmp(y.data(), oracles[mi].data(),
                          y.size() * sizeof(double)) != 0)
            failures.fetch_add(1);
        } else {
          const ErrorCode code = r.status.code();
          if (code != ErrorCode::kOverloaded &&
              code != ErrorCode::kTimeout && code != ErrorCode::kCancelled)
            failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, st.completed);
  EXPECT_EQ(st.submitted,
            static_cast<std::uint64_t>(kClients * kPerClient));
}

// --- request coalescing (docs/SERVICE.md) ---------------------------------

TEST_F(ServiceTest, BatchedRequestsCoalesceAndMatchOracle) {
  const auto a = gen::make_laplacian_2d(16, 16);
  const int k = 4;
  ServiceOptions opts;
  opts.workers = 1;  // one worker: every request funnels through one gather
  opts.max_batch = 6;
  opts.batch_window_us = 3e5;  // 0.3 s — plenty to gather all six
  MpkService svc(opts);

  constexpr int kReqs = 6;
  std::vector<AlignedVector<double>> xs;
  std::vector<MpkService::RequestId> ids;
  for (int i = 0; i < kReqs; ++i) {
    xs.push_back(test::random_vector(
        a.rows(), 1000 + static_cast<std::uint64_t>(i)));
    ids.push_back(svc.submit(a, xs.back(), k));
  }
  for (int i = 0; i < kReqs; ++i) {
    AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
    const RequestResult r = svc.wait(ids[i], y);
    ASSERT_TRUE(r.status.ok()) << r.status.error().what();
    // Per-request correctness is unchanged by sharing a sweep: each
    // lane is bitwise the serial B=1 result for its own vector.
    expect_bitwise_equal(y, serial_oracle(a, xs[i], k, opts.plan));
  }
  const ServiceStats st = svc.stats();
  EXPECT_GE(st.batches, 1u);
  EXPECT_GE(st.batch_coalesced, 2u);
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kReqs));
}

TEST_F(ServiceTest, BatchMemberDeadlineDoesNotPoisonSiblings) {
  const auto a = gen::make_laplacian_2d(16, 16);
  const int k = 3;
  ServiceOptions opts;
  opts.workers = 1;
  opts.max_batch = 4;
  opts.batch_window_us = 2.5e5;  // longer than the victim's deadline
  opts.watchdog_interval_seconds = 0.001;
  MpkService svc(opts);

  const auto x1 = test::random_vector(a.rows(), 11);
  const auto x2 = test::random_vector(a.rows(), 22);
  const auto x3 = test::random_vector(a.rows(), 33);
  // The victim's deadline expires inside the gather window, so it is
  // masked out of the batch with kTimeout while its siblings sweep.
  RequestOptions tight;
  tight.deadline_seconds = 0.02;
  const auto id1 = svc.submit(a, x1, k, tight);
  const auto id2 = svc.submit(a, x2, k);
  const auto id3 = svc.submit(a, x3, k);

  AlignedVector<double> y1(static_cast<std::size_t>(a.rows()));
  AlignedVector<double> y2(static_cast<std::size_t>(a.rows()));
  AlignedVector<double> y3(static_cast<std::size_t>(a.rows()));
  const RequestResult r1 = svc.wait(id1, y1);
  const RequestResult r2 = svc.wait(id2, y2);
  const RequestResult r3 = svc.wait(id3, y3);

  ASSERT_FALSE(r1.status.ok());
  EXPECT_EQ(r1.status.code(), ErrorCode::kTimeout);
  ASSERT_TRUE(r2.status.ok()) << r2.status.error().what();
  ASSERT_TRUE(r3.status.ok()) << r3.status.error().what();
  expect_bitwise_equal(y2, serial_oracle(a, x2, k, opts.plan));
  expect_bitwise_equal(y3, serial_oracle(a, x3, k, opts.plan));
  EXPECT_GE(svc.stats().timeouts, 1u);
}

TEST_F(ServiceTest, PreCancelledBatchMemberIsMaskedOut) {
  const auto a = gen::make_laplacian_2d(12, 12);
  const int k = 3;
  ServiceOptions opts;
  opts.workers = 1;
  opts.max_batch = 4;
  opts.batch_window_us = 2e5;
  MpkService svc(opts);

  const auto x1 = test::random_vector(a.rows(), 101);
  const auto x2 = test::random_vector(a.rows(), 102);
  const auto x3 = test::random_vector(a.rows(), 103);
  const auto id1 = svc.submit(a, x1, k);
  const auto id2 = svc.submit(a, x2, k);
  const auto id3 = svc.submit(a, x3, k);
  EXPECT_TRUE(svc.cancel(id2));

  AlignedVector<double> y1(static_cast<std::size_t>(a.rows()));
  AlignedVector<double> y2(static_cast<std::size_t>(a.rows()));
  AlignedVector<double> y3(static_cast<std::size_t>(a.rows()));
  const RequestResult r1 = svc.wait(id1, y1);
  const RequestResult r2 = svc.wait(id2, y2);
  const RequestResult r3 = svc.wait(id3, y3);

  ASSERT_TRUE(r1.status.ok()) << r1.status.error().what();
  ASSERT_FALSE(r2.status.ok());
  EXPECT_EQ(r2.status.code(), ErrorCode::kCancelled);
  ASSERT_TRUE(r3.status.ok()) << r3.status.error().what();
  expect_bitwise_equal(y1, serial_oracle(a, x1, k, opts.plan));
  expect_bitwise_equal(y3, serial_oracle(a, x3, k, opts.plan));
}

}  // namespace
}  // namespace fbmpk::service
