# ctest script: assert the NullTracer hooks left no trace in the
# optimized kernel object (tests/notracer_probe.cpp).
#
# Invoked as:
#   cmake -DNM=<nm> -DOBJS=<obj1;obj2;...> -P check_notracer.cmake
#
# Fails if any object defines or references a NullTracer member — the
# hooks are always_inline empty bodies and must vanish entirely. The
# sweep templates themselves legitimately mangle "NullTracer" into
# their own names (they are parameterized on the tracer type), so the
# check targets the hook methods, not any mention of the type.
if(NOT DEFINED NM OR NOT DEFINED OBJS)
  message(FATAL_ERROR "usage: cmake -DNM=... -DOBJS=... -P check_notracer.cmake")
endif()

foreach(obj IN LISTS OBJS)
  execute_process(
    COMMAND "${NM}" -C "${obj}"
    OUTPUT_VARIABLE symbols
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "nm failed on ${obj}")
  endif()
  string(REGEX MATCH "NullTracer::(read|write)" hit "${symbols}")
  if(hit)
    message(FATAL_ERROR
      "tracer hook symbol survived in release object ${obj}: ${hit}\n"
      "NullTracer::read/write must inline away (see kernels/tracer.hpp)")
  endif()
  # Telemetry kill switch (src/telemetry/telemetry.hpp): the probe TU is
  # compiled with the instrumentation macros expanded to nothing, so no
  # telemetry symbol — Registry, SweepRecorder, ScopedSpan, now_ns — may
  # be defined or referenced by the optimized kernel object.
  string(REGEX MATCH "telemetry::" telemetry_hit "${symbols}")
  if(telemetry_hit)
    message(FATAL_ERROR
      "telemetry symbol survived in release object ${obj}\n"
      "FBMPK_TELEMETRY=OFF must compile instrumentation away "
      "(see src/telemetry/telemetry.hpp)")
  endif()
endforeach()
message(STATUS
  "no tracer or telemetry symbols in release kernel objects")
