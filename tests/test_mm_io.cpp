// Unit tests for the Matrix Market reader/writer.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/mm_io.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

TEST(MatrixMarket, ReadsGeneralRealCoordinate) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "1 3 -1.5\n"
      "2 2 4.0\n"
      "3 1 0.5\n");
  MatrixMarketHeader hdr;
  const auto a = CsrMatrix<double>::from_coo(read_matrix_market(in, &hdr));
  EXPECT_EQ(hdr.rows, 3);
  EXPECT_EQ(hdr.declared_nnz, 4u);
  EXPECT_FALSE(hdr.symmetric);
  EXPECT_DOUBLE_EQ(a.at(0, 2), -1.5);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 0.5);
}

TEST(MatrixMarket, ExpandsSymmetricStorage) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "3 3 5.0\n");
  const auto a = CsrMatrix<double>::from_coo(read_matrix_market(in));
  EXPECT_EQ(a.nnz(), 4);  // off-diagonal mirrored, diagonals not
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_TRUE(is_numerically_symmetric(a));
}

TEST(MatrixMarket, PatternEntriesDefaultToOne) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const auto a = CsrMatrix<double>::from_coo(read_matrix_market(in));
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
}

TEST(MatrixMarket, RoundTripPreservesMatrix) {
  const auto a = test::random_matrix(50, 5.0, false, 21);
  std::stringstream buf;
  write_matrix_market(buf, a);
  const auto b = CsrMatrix<double>::from_coo(read_matrix_market(buf));
  EXPECT_EQ(a, b);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::istringstream in("3 3 1\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsComplexField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n"
      "1 1 1\n"
      "1 1 1.0 0.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsArrayFormat) {
  std::istringstream in(
      "%%MatrixMarket matrix array real general\n"
      "1 1\n"
      "1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 5\n"
      "1 1 2.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsOutOfRangeIndices) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 2.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, ParsesCrlfLineEndings) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\r\n"
      "% dos comment\r\n"
      "2 2 2\r\n"
      "1 1 3.0\r\n"
      "2 2 4.0\r\n");
  const auto a = CsrMatrix<double>::from_coo(read_matrix_market(in));
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 4.0);
}

TEST(MatrixMarket, ExpandsSkewSymmetricWithNegatedMirror) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 2 -1.5\n");
  MatrixMarketHeader hdr;
  const auto a = CsrMatrix<double>::from_coo(read_matrix_market(in, &hdr));
  EXPECT_TRUE(hdr.skew);
  EXPECT_EQ(a.nnz(), 4);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -5.0);  // mirror is negated
  EXPECT_DOUBLE_EQ(a.at(2, 1), -1.5);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 1.5);
}

TEST(MatrixMarket, SkewSymmetricZeroDiagonalEntriesAreDropped) {
  // Some exporters store the (zero) diagonal explicitly; accept and
  // skip it, but reject a nonzero value there.
  std::istringstream ok(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 2\n"
      "1 1 0.0\n"
      "2 1 1.0\n");
  const auto a = CsrMatrix<double>::from_coo(read_matrix_market(ok));
  EXPECT_EQ(a.nnz(), 2);

  std::istringstream bad(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "1 1 3.0\n");
  try {
    read_matrix_market(bad);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidMatrix);
  }
}

TEST(MatrixMarket, HermitianRejectedWithActionableMessage) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real hermitian\n"
      "1 1 1\n"
      "1 1 1.0\n");
  try {
    read_matrix_market(in);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupported);
    EXPECT_NE(std::string(e.what()).find("symmetric"), std::string::npos);
  }
}

TEST(MatrixMarket, RejectsDimensionsOverflowingIndexType) {
  std::istringstream dims(
      "%%MatrixMarket matrix coordinate real general\n"
      "3000000000 2 0\n");
  try {
    read_matrix_market(dims);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceLimit);
  }

  // Symmetric doubling may overflow even when the declared nnz fits.
  std::istringstream nnz(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2000000000 2000000000 1500000000\n");
  try {
    read_matrix_market(nnz);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceLimit);
  }
}

TEST(MatrixMarket, ParseErrorsCarryLineNumbers) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "1 bogus 1.0\n");
  try {
    read_matrix_market(in);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParse);
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos)
        << e.what();
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  const auto a = test::random_matrix(30, 4.0, true, 8);
  const std::string path = ::testing::TempDir() + "/fbmpk_roundtrip.mtx";
  write_matrix_market_file(path, a);
  const auto b = read_matrix_market_file(path);
  EXPECT_EQ(a, b);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"), Error);
}

TEST(MatrixMarket, TryReadReturnsExpectedInsteadOfThrowing) {
  const auto missing = try_read_matrix_market_file("/nonexistent/path.mtx");
  ASSERT_FALSE(missing);
  EXPECT_EQ(missing.code(), ErrorCode::kIo);

  const auto a = test::random_matrix(10, 3.0, false, 2);
  const std::string path = ::testing::TempDir() + "/fbmpk_try_read.mtx";
  write_matrix_market_file(path, a);
  const auto loaded = try_read_matrix_market_file(path);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded.value(), a);
}

}  // namespace
}  // namespace fbmpk
