// Unit tests for the Matrix Market reader/writer.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/mm_io.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

TEST(MatrixMarket, ReadsGeneralRealCoordinate) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "1 3 -1.5\n"
      "2 2 4.0\n"
      "3 1 0.5\n");
  MatrixMarketHeader hdr;
  const auto a = CsrMatrix<double>::from_coo(read_matrix_market(in, &hdr));
  EXPECT_EQ(hdr.rows, 3);
  EXPECT_EQ(hdr.declared_nnz, 4u);
  EXPECT_FALSE(hdr.symmetric);
  EXPECT_DOUBLE_EQ(a.at(0, 2), -1.5);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 0.5);
}

TEST(MatrixMarket, ExpandsSymmetricStorage) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "3 3 5.0\n");
  const auto a = CsrMatrix<double>::from_coo(read_matrix_market(in));
  EXPECT_EQ(a.nnz(), 4);  // off-diagonal mirrored, diagonals not
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_TRUE(is_numerically_symmetric(a));
}

TEST(MatrixMarket, PatternEntriesDefaultToOne) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const auto a = CsrMatrix<double>::from_coo(read_matrix_market(in));
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
}

TEST(MatrixMarket, RoundTripPreservesMatrix) {
  const auto a = test::random_matrix(50, 5.0, false, 21);
  std::stringstream buf;
  write_matrix_market(buf, a);
  const auto b = CsrMatrix<double>::from_coo(read_matrix_market(buf));
  EXPECT_EQ(a, b);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::istringstream in("3 3 1\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsComplexField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n"
      "1 1 1\n"
      "1 1 1.0 0.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsArrayFormat) {
  std::istringstream in(
      "%%MatrixMarket matrix array real general\n"
      "1 1\n"
      "1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 5\n"
      "1 1 2.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsOutOfRangeIndices) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 2.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, FileRoundTrip) {
  const auto a = test::random_matrix(30, 4.0, true, 8);
  const std::string path = ::testing::TempDir() + "/fbmpk_roundtrip.mtx";
  write_matrix_market_file(path, a);
  const auto b = read_matrix_market_file(path);
  EXPECT_EQ(a, b);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"), Error);
}

}  // namespace
}  // namespace fbmpk
