// Release-build probe for the NullTracer zero-cost guarantee.
//
// This TU instantiates the serial sweeps (BtB + split) and the parallel
// barrier sweep with their default NullTracer, exactly as release users
// do. The ctest check_notracer.cmake script then runs `nm` over the
// resulting object: the NullTracer read/write hooks are
// [[gnu::always_inline]] empty constexpr bodies, so no defined or
// undefined symbol for them may survive in optimized code. A surviving
// symbol means the hooks became real calls — the tracer would tax every
// nonzero of every release sweep.
//
// The same object also polices the telemetry kill switch: this TU
// force-disables the instrumentation macros (FBMPK_TELEMETRY_FORCE_OFF,
// mirroring what an FBMPK_TELEMETRY=OFF build does globally) and
// instantiates the barrier and engine sweeps. check_notracer.cmake then
// asserts no fbmpk::telemetry symbol survives — proof that the spans,
// recorders and counters compile to nothing on the hot paths.
//
// The entry points take runtime arguments and have external linkage so
// the optimizer cannot fold the kernels away entirely.
#define FBMPK_TELEMETRY_FORCE_OFF 1

#include <span>

#include "kernels/fbmpk.hpp"
#include "kernels/fbmpk_parallel.hpp"
#include "sparse/split.hpp"

namespace fbmpk::probe {

void run_serial_btb(const TriangularSplit<double>& s,
                    std::span<const double> x, int k, std::span<double> y,
                    FbWorkspace<double>& ws) {
  fbmpk_power(s, x, k, y, ws, FbVariant::kBtb);
}

void run_serial_split(const TriangularSplit<double>& s,
                      std::span<const double> x, int k, std::span<double> y,
                      FbWorkspace<double>& ws) {
  fbmpk_power(s, x, k, y, ws, FbVariant::kSplit);
}

void run_parallel(const TriangularSplit<double>& s, const AbmcOrdering& o,
                  std::span<const double> x, int k, std::span<double> y,
                  FbWorkspace<double>& ws) {
  fbmpk_parallel_power(s, o, x, k, y, ws);
}

bool run_engine(const TriangularSplit<double>& s, const AbmcOrdering& o,
                const SweepSchedule& sched, std::span<const double> x, int k,
                SweepWorkspace<double>& ws, std::span<double> y) {
  double* yp = y.data();
  return fbmpk_engine_try_sweep(
      s, o, sched, x, k, ws, /*pin_threads=*/false,
      [&](int p, index_t i, double v) {
        if (p == k) yp[i] = v;
      });
}

}  // namespace fbmpk::probe
