// Whole-suite property sweeps: every analogue matrix through every plan
// configuration, plus randomized fuzz checks of the sparse substrate
// against simple reference implementations.
#include <gtest/gtest.h>

#include <map>

#include "core/plan.hpp"
#include "gen/suite.hpp"
#include "kernels/mpk_baseline.hpp"
#include "reorder/abmc.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

struct PlanConfig {
  const char* label;
  bool reorder;
  bool parallel;
  Scheduler scheduler;
  FbVariant variant;
};

const PlanConfig kConfigs[] = {
    {"serial_btb", false, false, Scheduler::kAbmc, FbVariant::kBtb},
    {"serial_split", false, false, Scheduler::kAbmc, FbVariant::kSplit},
    {"abmc_parallel", true, true, Scheduler::kAbmc, FbVariant::kBtb},
    {"level_parallel", false, true, Scheduler::kLevels, FbVariant::kBtb},
    {"reorder_serial", true, false, Scheduler::kAbmc, FbVariant::kBtb},
};

class SuitePropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(SuitePropertyTest, EveryConfigMatchesBaseline) {
  const auto [name, config_idx] = GetParam();
  const auto& cfg = kConfigs[config_idx];
  const auto m = gen::make_suite_matrix(name, 0.015);
  const index_t n = m.matrix.rows();
  const auto x = test::random_vector(n, 0xcafe);

  AlignedVector<double> ref(static_cast<std::size_t>(n));
  MpkWorkspace<double> mws;
  mpk_power<double>(m.matrix, x, 5, ref, mws);

  PlanOptions opts;
  opts.reorder = cfg.reorder;
  opts.parallel = cfg.parallel;
  opts.scheduler = cfg.scheduler;
  opts.variant = cfg.variant;
  opts.abmc.num_blocks = 48;
  auto plan = MpkPlan::build(m.matrix, opts);
  AlignedVector<double> y(static_cast<std::size_t>(n));
  plan.power(x, 5, y);
  test::expect_near_rel(y, ref, 1e-7, cfg.label);
}

INSTANTIATE_TEST_SUITE_P(
    AllMatricesAllConfigs, SuitePropertyTest,
    ::testing::Combine(::testing::ValuesIn(gen::suite_names()),
                       ::testing::Range(0, 5)),
    [](const auto& suite_info) {
      return std::get<0>(suite_info.param) + "_" +
             kConfigs[std::get<1>(suite_info.param)].label;
    });

TEST(SuiteProperties, AbmcSchedulesValidForWholeSuite) {
  for (const auto& name : gen::suite_names()) {
    const auto m = gen::make_suite_matrix(name, 0.015);
    AbmcOptions opts;
    opts.num_blocks = 48;
    const auto o = abmc_order(m.matrix, opts);
    const auto permuted = permute_symmetric(m.matrix, o.perm);
    EXPECT_TRUE(is_valid_schedule(permuted, o)) << name;
  }
}

// --------------------------------------------------------------------------
// Fuzz: COO -> CSR against a map-based reference
// --------------------------------------------------------------------------

class CooFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CooFuzzTest, CompressionMatchesMapReference) {
  Rng rng(GetParam());
  const auto n = static_cast<index_t>(5 + rng.next_below(60));
  const auto entries = static_cast<std::size_t>(rng.next_below(400));

  CooMatrix<double> coo(n, n);
  std::map<std::pair<index_t, index_t>, double> ref;
  for (std::size_t e = 0; e < entries; ++e) {
    const auto i = static_cast<index_t>(rng.next_below(n));
    const auto j = static_cast<index_t>(rng.next_below(n));
    const double v = rng.next_double(-1.0, 1.0);
    coo.add(i, j, v);  // duplicates intentional
    ref[{i, j}] += v;
  }

  const auto a = CsrMatrix<double>::from_coo(coo);
  a.validate();
  EXPECT_EQ(a.nnz(), static_cast<index_t>(ref.size()));
  for (const auto& [pos, v] : ref)
    EXPECT_NEAR(a.at(pos.first, pos.second), v, 1e-12) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CooFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// --------------------------------------------------------------------------
// Fuzz: random permutations round-trip matrices and vectors
// --------------------------------------------------------------------------

class PermFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PermFuzzTest, SymmetricPermuteRoundTrips) {
  Rng rng(GetParam() * 977);
  const auto n = static_cast<index_t>(10 + rng.next_below(100));
  const auto a = test::random_matrix(n, 5.0, false, GetParam());

  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);
  const Permutation p(order);

  // Permuting with p then with p.inverse() restores A.
  const auto forward = permute_symmetric(a, p);
  const auto back = permute_symmetric(forward, Permutation(p.inverse()));
  EXPECT_EQ(back, a);

  // Vector round-trip.
  const auto x = test::random_vector(n, GetParam() + 5);
  AlignedVector<double> px(static_cast<std::size_t>(n)),
      upx(static_cast<std::size_t>(n));
  permute_vector<double>(p, x, px);
  unpermute_vector<double>(p, px, upx);
  EXPECT_TRUE(std::equal(x.begin(), x.end(), upx.begin()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace fbmpk
