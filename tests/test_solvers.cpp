// Tests for src/solvers: PCG with every preconditioner, Chebyshev
// semi-iteration, blocked power method, and two-level multigrid.
#include <gtest/gtest.h>

#include "gen/stencil.hpp"
#include "reorder/permutation.hpp"
#include "solvers/solvers.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace fbmpk::solvers {
namespace {

// SPD test problem with a known solution.
struct Problem {
  CsrMatrix<double> a;
  AlignedVector<double> x_star;
  AlignedVector<double> b;
};

Problem grid_problem(index_t nx, index_t ny, std::uint64_t seed) {
  Problem p;
  p.a = gen::make_laplacian_2d(nx, ny, seed);
  const index_t n = p.a.rows();
  p.x_star = test::random_vector(n, seed + 1);
  p.b.resize(static_cast<std::size_t>(n));
  spmv<double>(p.a, p.x_star, p.b);
  return p;
}

void expect_solved(const Problem& p, std::span<const double> x,
                   double tol = 1e-6) {
  for (index_t i = 0; i < p.a.rows(); ++i)
    ASSERT_NEAR(x[i], p.x_star[i], tol * (1.0 + std::abs(p.x_star[i])));
}

TEST(Pcg, PlainCgSolvesSpdSystem) {
  const auto p = grid_problem(20, 20, 3);
  AlignedVector<double> x(p.b.size(), 0.0);
  const auto r = pcg(p.a, p.b, x, identity_preconditioner());
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.relative_residual, 1e-10);
  expect_solved(p, x);
}

TEST(Pcg, SymgsPreconditioningReducesIterations) {
  const auto p = grid_problem(30, 30, 5);
  AbmcOptions aopts;
  aopts.num_blocks = 64;
  const auto o = abmc_order(p.a, aopts);
  const auto permuted = permute_symmetric(p.a, o.perm);
  const auto split = split_triangular(permuted);

  // Solve in the permuted space with matching b.
  AlignedVector<double> pb(p.b.size());
  permute_vector<double>(o.perm, p.b, pb);

  AlignedVector<double> x_plain(p.b.size(), 0.0), x_pre(p.b.size(), 0.0);
  const auto plain = pcg(permuted, pb, x_plain, identity_preconditioner());
  const auto pre = pcg(permuted, pb, x_pre, symgs_preconditioner(split, o));
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(Pcg, PolynomialPreconditioningReducesIterations) {
  const auto p = grid_problem(25, 25, 7);
  PlanOptions popts;
  auto plan = MpkPlan::build(p.a, popts);
  const auto [lo, hi] = gershgorin_interval(p.a);
  (void)lo;
  AlignedVector<double> x_plain(p.b.size(), 0.0), x_pre(p.b.size(), 0.0);
  const auto plain = pcg(p.a, p.b, x_plain, identity_preconditioner());
  const auto pre =
      pcg(p.a, p.b, x_pre, polynomial_preconditioner(plan, 4, 1.0 / hi));
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
  expect_solved(p, x_pre);
}

TEST(Pcg, ZeroRhsGivesZeroSolution) {
  const auto a = gen::make_laplacian_2d(6, 6);
  AlignedVector<double> b(36, 0.0), x(36, 5.0);
  const auto r = pcg(a, b, x, identity_preconditioner());
  EXPECT_TRUE(r.converged);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Pcg, ReportsNonConvergenceWithinBudget) {
  const auto p = grid_problem(25, 25, 9);
  AlignedVector<double> x(p.b.size(), 0.0);
  SolveOptions opts;
  opts.max_iterations = 2;
  const auto r = pcg(p.a, p.b, x, identity_preconditioner(), opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 2);
  EXPECT_GT(r.relative_residual, 0.0);
}

TEST(Chebyshev, SolvesWithGershgorinBounds) {
  const auto p = grid_problem(20, 20, 11);
  auto [lo, hi] = gershgorin_interval(p.a);
  lo = std::max(lo, 0.05 * hi);  // Gershgorin lo can reach 0; clamp
  AlignedVector<double> x(p.b.size(), 0.0);
  SolveOptions opts;
  opts.max_iterations = 3000;
  opts.tolerance = 1e-9;
  const auto r = chebyshev_iteration(p.a, p.b, x, lo, hi, opts);
  EXPECT_TRUE(r.converged) << r.relative_residual;
  expect_solved(p, x, 1e-5);
}

TEST(Chebyshev, RejectsBadInterval) {
  const auto a = gen::make_laplacian_2d(4, 4);
  AlignedVector<double> b(16, 1.0), x(16, 0.0);
  EXPECT_THROW(chebyshev_iteration(a, b, x, 2.0, 1.0), Error);
  EXPECT_THROW(chebyshev_iteration(a, b, x, -1.0, 1.0), Error);
}

TEST(PowerMethod, FindsDominantEigenvalueOfDiagonalMatrix) {
  CooMatrix<double> coo(6, 6);
  const double eigs[] = {1.0, 2.0, 3.0, 4.0, 5.0, 9.0};
  for (index_t i = 0; i < 6; ++i) coo.add(i, i, eigs[i]);
  const auto a = CsrMatrix<double>::from_coo(coo);
  auto plan = MpkPlan::build(a);
  AlignedVector<double> v = test::random_vector(6, 13);
  SolveOptions opts;
  opts.tolerance = 1e-12;
  const auto r = power_method(a, plan, v, 4, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, 9.0, 1e-6);
  EXPECT_GT(std::abs(v[5]), 0.999);  // eigenvector ~ e_6
}

TEST(PowerMethod, AgreesWithItselfAcrossBlockSizes) {
  const auto a = test::random_matrix(120, 6.0, true, 15);
  auto plan = MpkPlan::build(a);
  SolveOptions opts;
  opts.tolerance = 1e-11;
  opts.max_iterations = 4000;
  AlignedVector<double> v1 = test::random_vector(120, 16);
  AlignedVector<double> v2 = test::random_vector(120, 16);
  const auto r1 = power_method(a, plan, v1, 2, opts);
  const auto r2 = power_method(a, plan, v2, 8, opts);
  EXPECT_TRUE(r1.converged && r2.converged);
  EXPECT_NEAR(r1.eigenvalue, r2.eigenvalue,
              1e-6 * std::abs(r1.eigenvalue));
}

TEST(Multigrid, CoarseningRoughlyHalvesRows) {
  const auto a = gen::make_laplacian_2d(32, 32);
  const auto mg = TwoLevelMultigrid::build(a);
  EXPECT_LT(mg.coarse_rows(), a.rows());
  EXPECT_GE(mg.coarse_rows(), a.rows() / 3);  // pairwise aggregation
}

TEST(Multigrid, VcycleContractsResidual) {
  const auto p = grid_problem(24, 24, 17);
  const auto mg = TwoLevelMultigrid::build(p.a);
  AlignedVector<double> x(p.b.size(), 0.0);
  AlignedVector<double> r(p.b.size());

  auto residual = [&] {
    spmv<double>(p.a, x, r);
    double s = 0.0;
    for (std::size_t i = 0; i < r.size(); ++i) {
      const double d = p.b[i] - r[i];
      s += d * d;
    }
    return std::sqrt(s);
  };

  const double r0 = residual();
  mg.vcycle(p.b, x);
  const double r1 = residual();
  mg.vcycle(p.b, x);
  const double r2 = residual();
  EXPECT_LT(r1, 0.7 * r0);
  EXPECT_LT(r2, 0.7 * r1);
}

TEST(Multigrid, SolveReachesTolerance) {
  const auto p = grid_problem(20, 20, 19);
  const auto mg = TwoLevelMultigrid::build(p.a);
  AlignedVector<double> x(p.b.size(), 0.0);
  SolveOptions opts;
  opts.tolerance = 1e-9;
  opts.max_iterations = 60;
  const auto r = mg.solve(p.b, x, opts);
  EXPECT_TRUE(r.converged) << r.relative_residual;
  expect_solved(p, x, 1e-5);
}


// The serving layer hands solvers a RunControl: a fired token must end
// the iteration with the token's typed reason, not run out the budget.
TEST(Cancellation, PcgStopsWithTypedReason) {
  const auto p = grid_problem(20, 20, 7);
  AlignedVector<double> x(p.b.size(), 0.0);
  RunControl ctl;
  ctl.request_cancel(ErrorCode::kTimeout);
  SolveOptions opts;
  opts.control = &ctl;
  const auto r = pcg(p.a, p.b, x, identity_preconditioner(), opts);
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.code, ErrorCode::kTimeout);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Cancellation, ChebyshevAndMultigridAndPowerMethodStopTyped) {
  const auto p = grid_problem(16, 16, 9);
  RunControl ctl;
  ctl.request_cancel(ErrorCode::kCancelled);
  SolveOptions opts;
  opts.control = &ctl;

  AlignedVector<double> x(p.b.size(), 0.0);
  const auto [lo, hi] = gershgorin_interval(p.a);
  const auto rc = chebyshev_iteration(p.a, p.b, x, std::max(lo, 1e-8), hi,
                                      opts);
  EXPECT_TRUE(rc.cancelled);
  EXPECT_EQ(rc.code, ErrorCode::kCancelled);

  const auto mg = TwoLevelMultigrid::build(p.a);
  std::fill(x.begin(), x.end(), 0.0);
  const auto rm = mg.solve(p.b, x, opts);
  EXPECT_TRUE(rm.cancelled);
  EXPECT_EQ(rm.code, ErrorCode::kCancelled);

  auto plan = MpkPlan::build(p.a);
  AlignedVector<double> v = test::random_vector(p.a.rows(), 11);
  const auto re = power_method(p.a, plan, v, 4, opts);
  EXPECT_TRUE(re.cancelled);
  EXPECT_EQ(re.code, ErrorCode::kCancelled);
}

}  // namespace
}  // namespace fbmpk::solvers
