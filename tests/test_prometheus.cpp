// Prometheus exposition tests (src/telemetry/prometheus.*,
// metrics_http.*): name sanitization, text-format rendering incl.
// non-finite spellings, cumulative histogram families, atomic textfile
// semantics, fault-injected writers, and the embedded scrape endpoint
// (bind, scrape, port conflict, idempotent stop).
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "support/fault_inject.hpp"
#include "telemetry/metrics_http.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk {
namespace {

namespace fs = std::filesystem;

TEST(Prometheus, SanitizeMapsInvalidCharactersToUnderscore) {
  EXPECT_EQ(telemetry::prom_sanitize("service.request_latency_ns"),
            "service_request_latency_ns");
  EXPECT_EQ(telemetry::prom_sanitize("already_valid:name"),
            "already_valid:name");
  EXPECT_EQ(telemetry::prom_sanitize("9starts_with_digit"),
            "_starts_with_digit");
  EXPECT_EQ(telemetry::prom_sanitize("spaces and-dashes"),
            "spaces_and_dashes");
  EXPECT_EQ(telemetry::prom_sanitize(""), "_");
}

TEST(Prometheus, RenderEmitsHelpTypeAndSampleLines) {
  std::vector<telemetry::PromFamily> fams;
  telemetry::PromFamily g;
  g.name = "fbmpk_queue_depth";
  g.help = "Mean queue depth over the window\nsecond line \\ backslash";
  g.type = "gauge";
  g.samples.push_back({"", "", 2.5});
  fams.push_back(g);
  telemetry::PromFamily labeled;
  labeled.name = "fbmpk_rung_completions";
  labeled.type = "gauge";
  labeled.samples.push_back({"", "rung=\"engine\"", 7.0});
  fams.push_back(labeled);
  telemetry::PromFamily empty;
  empty.name = "fbmpk_should_not_appear";
  empty.help = "no samples, no output";
  fams.push_back(empty);

  const std::string out = telemetry::prometheus_render(fams);
  EXPECT_NE(out.find("# HELP fbmpk_queue_depth Mean queue depth over the "
                     "window\\nsecond line \\\\ backslash\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE fbmpk_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("fbmpk_queue_depth 2.5\n"), std::string::npos);
  EXPECT_NE(out.find("fbmpk_rung_completions{rung=\"engine\"} 7\n"),
            std::string::npos);
  EXPECT_EQ(out.find("fbmpk_should_not_appear"), std::string::npos);
}

TEST(Prometheus, RenderSpellsOutNonFiniteValues) {
  std::vector<telemetry::PromFamily> fams(1);
  fams[0].name = "fbmpk_edge";
  fams[0].type = "gauge";
  fams[0].samples.push_back({"", "v=\"nan\"", std::nan("")});
  fams[0].samples.push_back(
      {"", "v=\"pinf\"", std::numeric_limits<double>::infinity()});
  fams[0].samples.push_back(
      {"", "v=\"ninf\"", -std::numeric_limits<double>::infinity()});
  const std::string out = telemetry::prometheus_render(fams);
  EXPECT_NE(out.find("fbmpk_edge{v=\"nan\"} NaN\n"), std::string::npos);
  EXPECT_NE(out.find("fbmpk_edge{v=\"pinf\"} +Inf\n"), std::string::npos);
  EXPECT_NE(out.find("fbmpk_edge{v=\"ninf\"} -Inf\n"), std::string::npos);
}

TEST(Prometheus, StreamFaultReturnsTypedIoStatus) {
  std::vector<telemetry::PromFamily> fams(1);
  fams[0].name = "fbmpk_fault";
  fams[0].help = "long enough help text to overflow a tiny sink";
  fams[0].samples.push_back({"", "", 1.0});
  for (std::size_t limit : {std::size_t{0}, std::size_t{8}, std::size_t{32}}) {
    FailingWriteStream os(limit);
    Status st = Status();
    EXPECT_NO_THROW(st = telemetry::prometheus_render(os, fams));
    ASSERT_FALSE(st.ok()) << "limit=" << limit;
    EXPECT_EQ(st.code(), ErrorCode::kIo);
  }
}

TEST(Prometheus, HistogramFamilyEmitsCumulativeOctaveBuckets) {
  telemetry::Histogram h;
  h.add(1);     // bucket 0, upper bound 2 ns
  h.add(1);     // bucket 0
  h.add(1000);  // bucket 9, upper bound 2^10 ns
  h.add(5000);  // bucket 12, upper bound 2^13 ns
  const telemetry::PromFamily f = telemetry::histogram_family(
      "fbmpk_lat_seconds", "latency", h, 1e-9);
  EXPECT_EQ(f.type, "histogram");
  const std::string out = telemetry::prometheus_render({f});
  // Cumulative counts at each populated octave's upper bound (ns→s).
  EXPECT_NE(out.find("fbmpk_lat_seconds_bucket{le=\"2e-09\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("fbmpk_lat_seconds_bucket{le=\"1.024e-06\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("fbmpk_lat_seconds_bucket{le=\"8.192e-06\"} 4\n"),
            std::string::npos);
  EXPECT_NE(out.find("fbmpk_lat_seconds_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(out.find("fbmpk_lat_seconds_count 4\n"), std::string::npos);
  // _sum = 6002 ns in seconds.
  EXPECT_NE(out.find("fbmpk_lat_seconds_sum 6.002e-06\n"), std::string::npos);
}

TEST(Prometheus, AppendRegistryFamiliesScalesNsHistogramsToSeconds) {
  telemetry::Snapshot snap;
  snap.counters.emplace_back("service.completed", 42);
  snap.merged[static_cast<std::size_t>(telemetry::Hist::kRequestLatency)]
      .add(2'000'000);  // 2 ms
  std::vector<telemetry::PromFamily> fams;
  telemetry::append_registry_families(snap, fams);
  const std::string out = telemetry::prometheus_render(fams);
  EXPECT_NE(out.find("fbmpk_service_completed 42\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE fbmpk_service_completed untyped\n"),
            std::string::npos);
  EXPECT_NE(out.find("_seconds_count 1\n"), std::string::npos);
  EXPECT_EQ(out.find("_ns_"), std::string::npos)
      << "nanosecond family leaked unscaled: " << out;
}

TEST(Prometheus, TextfileAtomicWritesAndRefusesBadPaths) {
  const fs::path dir = fs::temp_directory_path() / "fbmpk_prom_textfile";
  fs::create_directories(dir);
  const std::string path = (dir / "metrics.prom").string();
  ASSERT_TRUE(telemetry::write_textfile_atomic(path, "fbmpk_up 1\n").ok());
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "fbmpk_up 1\n");
  }
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // Unwritable directory: typed kIo, the previous file stays intact.
  const Status bad = telemetry::write_textfile_atomic(
      "/nonexistent_fbmpk_prom_dir/metrics.prom", "x");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kIo);
  const Status empty = telemetry::write_textfile_atomic("", "x");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.code(), ErrorCode::kIo);
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "fbmpk_up 1\n") << "failed write clobbered the file";
  }
  fs::remove_all(dir);
}

#ifndef _WIN32

/// One blocking loopback scrape against the embedded endpoint.
std::string scrape_once(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const char req[] = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  (void)::send(fd, req, sizeof req - 1, 0);
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(Prometheus, HttpServerServesExpositionOnEphemeralPort) {
  telemetry::MetricsHttpServer srv;
  const Status st = srv.start(0, [] {
    std::vector<telemetry::PromFamily> fams(1);
    fams[0].name = "fbmpk_live_probe";
    fams[0].type = "gauge";
    fams[0].samples.push_back({"", "", 1.0});
    return telemetry::prometheus_render(fams);
  });
  ASSERT_TRUE(st.ok()) << st.error().what();
  ASSERT_TRUE(srv.running());
  ASSERT_GT(srv.port(), 0);

  const std::string resp = scrape_once(srv.port());
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.find("fbmpk_live_probe 1\n"), std::string::npos);
  EXPECT_GE(srv.scrapes(), 1u);

  // Double-start on a running server is a typed kInternal.
  const Status again = srv.start(0, [] { return std::string(); });
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), ErrorCode::kInternal);

  srv.stop();
  EXPECT_FALSE(srv.running());
  srv.stop();  // idempotent
}

TEST(Prometheus, HttpServerBindConflictIsTypedIoAndFirstKeepsServing) {
  telemetry::MetricsHttpServer first;
  ASSERT_TRUE(first.start(0, [] { return std::string("fbmpk_first 1\n"); })
                  .ok());
  telemetry::MetricsHttpServer second;
  const Status st =
      second.start(first.port(), [] { return std::string(); });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kIo);
  EXPECT_FALSE(second.running());
  // The losing bind must not have disturbed the first listener.
  EXPECT_NE(scrape_once(first.port()).find("fbmpk_first 1\n"),
            std::string::npos);
  first.stop();
}

#endif  // !_WIN32

}  // namespace
}  // namespace fbmpk
