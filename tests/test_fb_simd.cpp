// Fast-mode sweeps: backend dispatch, compressed indices, error bound
// and cross-schedule determinism (PR 3).
#include "kernels/fb_simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/plan.hpp"
#include "kernels/dispatch.hpp"
#include "support/threading.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

double inf_norm_matrix(const CsrMatrix<double>& a) {
  double norm = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    double row = 0.0;
    for (index_t j = a.row_ptr()[i]; j < a.row_ptr()[i + 1]; ++j)
      row += std::abs(a.values()[j]);
    norm = std::max(norm, row);
  }
  return norm;
}

double inf_norm(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

index_t max_row_nnz(const CsrMatrix<double>& a) {
  index_t m = 0;
  for (index_t i = 0; i < a.rows(); ++i) m = std::max(m, a.row_nnz(i));
  return m;
}

std::vector<KernelBackend> available_vector_backends() {
  std::vector<KernelBackend> v{KernelBackend::kGeneric};
  if (backend_available(KernelBackend::kAvx2))
    v.push_back(KernelBackend::kAvx2);
  if (backend_available(KernelBackend::kAvx512))
    v.push_back(KernelBackend::kAvx512);
  return v;
}

TEST(Dispatch, BackendNamesRoundTrip) {
  for (const KernelBackend b :
       {KernelBackend::kAuto, KernelBackend::kScalar, KernelBackend::kGeneric,
        KernelBackend::kAvx2, KernelBackend::kAvx512})
    EXPECT_EQ(parse_backend(backend_name(b)), b);
  EXPECT_THROW(parse_backend("sse9"), Error);
  try {
    parse_backend("sse9");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupported);
  }
}

TEST(Dispatch, ScalarAndGenericAlwaysAvailable) {
  EXPECT_TRUE(backend_available(KernelBackend::kAuto));
  EXPECT_TRUE(backend_available(KernelBackend::kScalar));
  EXPECT_TRUE(backend_available(KernelBackend::kGeneric));
  const KernelBackend resolved = resolve_backend(KernelBackend::kAuto);
  EXPECT_NE(resolved, KernelBackend::kAuto);
  EXPECT_TRUE(backend_available(resolved));
  // Non-auto requests pass through unchanged.
  EXPECT_EQ(resolve_backend(KernelBackend::kScalar), KernelBackend::kScalar);
}

TEST(Dispatch, RowKernelsTableHasAllEntries) {
  for (const KernelBackend b : available_vector_backends()) {
    const RowOps& ops = row_kernels(b);
    EXPECT_NE(ops.dot2_btb, nullptr);
    EXPECT_NE(ops.dot1_btb, nullptr);
    EXPECT_NE(ops.dot2_btb_u16, nullptr);
    EXPECT_NE(ops.dot1_btb_u16, nullptr);
  }
}

// Scalar backend + compressed indices must be bitwise identical to the
// exact path: the u16 decode twins replicate the accumulation order.
TEST(FbSimd, ScalarCompressedIsBitwiseExact) {
  const auto a = test::random_matrix(400, 8.0, /*symmetric=*/true, 21);
  const auto x = test::random_vector(a.rows(), 3);

  for (const bool parallel : {false, true}) {
    PlanOptions exact;
    exact.parallel = parallel;
    PlanOptions packed = exact;
    packed.index_compress = true;

    auto pe = MpkPlan::build(a, exact);
    auto pp = MpkPlan::build(a, packed);
    ASSERT_EQ(pp.resolved_backend(), KernelBackend::kScalar);
    EXPECT_GT(pp.stats().packed_index_bytes, 0u);

    AlignedVector<double> ye(x.size()), yp(x.size());
    for (const int k : {1, 2, 3, 6}) {
      pe.power(x, k, ye);
      pp.power(x, k, yp);
      for (std::size_t i = 0; i < ye.size(); ++i)
        ASSERT_EQ(ye[i], yp[i]) << "parallel=" << parallel << " k=" << k
                                << " i=" << i;
    }
  }
}

// The generic backend keeps the exact scalar accumulation order (it
// only adds prefetch hints), so it is bitwise exact too.
TEST(FbSimd, GenericBackendIsBitwiseExact) {
  const auto a = test::random_matrix(300, 7.0, /*symmetric=*/false, 8);
  const auto x = test::random_vector(a.rows(), 5);

  PlanOptions exact;
  exact.parallel = false;
  PlanOptions generic = exact;
  generic.kernel_backend = KernelBackend::kGeneric;

  auto pe = MpkPlan::build(a, exact);
  auto pg = MpkPlan::build(a, generic);
  AlignedVector<double> ye(x.size()), yg(x.size());
  for (const int k : {1, 4, 7}) {
    pe.power(x, k, ye);
    pg.power(x, k, yg);
    for (std::size_t i = 0; i < ye.size(); ++i)
      ASSERT_EQ(ye[i], yg[i]) << "k=" << k << " i=" << i;
  }
}

// Fast-mode error bound from docs/KERNELS.md:
//   ||fast - exact||_inf <= 4 k m eps ||A||_inf^k ||x||_inf.
TEST(FbSimd, FastModeErrorBoundHolds) {
  const auto a = test::random_matrix(500, 10.0, /*symmetric=*/true, 42);
  const auto x = test::random_vector(a.rows(), 9);
  const double anorm = inf_norm_matrix(a);
  const double xnorm = inf_norm(x);
  const double m = static_cast<double>(max_row_nnz(a));
  const double eps = std::numeric_limits<double>::epsilon();

  PlanOptions exact;
  exact.parallel = false;
  auto pe = MpkPlan::build(a, exact);
  AlignedVector<double> ye(x.size()), yf(x.size());

  for (const KernelBackend b : available_vector_backends()) {
    for (const bool compress : {false, true}) {
      PlanOptions fast = exact;
      fast.kernel_backend = b;
      fast.index_compress = compress;
      auto pf = MpkPlan::build(a, fast);
      for (const int k : {1, 2, 5, 8}) {
        pe.power(x, k, ye);
        pf.power(x, k, yf);
        const double bound =
            4.0 * k * m * eps * std::pow(anorm, k) * xnorm;
        for (std::size_t i = 0; i < ye.size(); ++i)
          ASSERT_LE(std::abs(ye[i] - yf[i]), bound)
              << backend_name(b) << " compress=" << compress << " k=" << k
              << " i=" << i;
      }
    }
  }
}

// Fast mode is deterministic across schedules: serial, barrier and the
// point-to-point engine issue the same per-row kernels, so their
// results are bitwise identical to each other (though not to exact).
TEST(FbSimd, FastModeBitwiseIdenticalAcrossSchedules) {
  const auto a = test::random_matrix(600, 9.0, /*symmetric=*/true, 17);
  const auto x = test::random_vector(a.rows(), 11);
  const KernelBackend b = resolve_backend(KernelBackend::kAuto);

  PlanOptions serial;
  serial.parallel = false;
  serial.kernel_backend = b;
  serial.index_compress = true;
  // The serial pipeline and the parallel schedules must see the same
  // matrix ordering for a bitwise comparison, so reorder everywhere.
  auto ps = MpkPlan::build(a, serial);

  PlanOptions barrier = serial;
  barrier.parallel = true;
  auto pb = MpkPlan::build(a, barrier);

  PlanOptions engine = barrier;
  engine.sweep.sync = SweepSync::kPointToPoint;
  auto pg = MpkPlan::build(a, engine);

  AlignedVector<double> ys(x.size()), yb(x.size()), yg(x.size());
  for (const int k : {1, 3, 4, 8}) {
    ps.power(x, k, ys);
    pb.power(x, k, yb);
    pg.power(x, k, yg);
    for (std::size_t i = 0; i < ys.size(); ++i) {
      ASSERT_EQ(ys[i], yb[i]) << "barrier k=" << k << " i=" << i;
      ASSERT_EQ(ys[i], yg[i]) << "engine k=" << k << " i=" << i;
    }
  }
}

TEST(FbSimd, PowerAllAndPolynomialRouteThroughFastMode) {
  const auto a = test::random_matrix(250, 6.0, /*symmetric=*/true, 31);
  const auto x = test::random_vector(a.rows(), 2);
  const int k = 5;

  PlanOptions exact;
  exact.parallel = false;
  PlanOptions fast = exact;
  fast.kernel_backend = resolve_backend(KernelBackend::kAuto);
  fast.index_compress = true;

  auto pe = MpkPlan::build(a, exact);
  auto pf = MpkPlan::build(a, fast);

  const std::size_t n = x.size();
  AlignedVector<double> be(n * (k + 1)), bf(n * (k + 1));
  pe.power_all(x, k, be);
  pf.power_all(x, k, bf);
  test::expect_near_rel(bf, be, 1e-9, "power_all fast vs exact");

  const std::vector<double> coeffs{1.0, 0.5, 0.25, 0.125, 0.0625};
  AlignedVector<double> ye(n), yf(n);
  pe.polynomial(coeffs, x, ye);
  pf.polynomial(coeffs, x, yf);
  test::expect_near_rel(yf, ye, 1e-9, "polynomial fast vs exact");
}

TEST(FbSimd, DispatchRejectsUnsupportedPlanShapes) {
  const auto a = test::random_matrix(100, 5.0, /*symmetric=*/true, 3);

  {
    // Split-vector variant stays scalar-only.
    PlanOptions o;
    o.parallel = false;
    o.variant = FbVariant::kSplit;
    o.kernel_backend = KernelBackend::kGeneric;
    try {
      MpkPlan::build(a, o);
      FAIL() << "split variant + vector backend must be rejected";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kUnsupported);
    }
  }
  {
    // The level scheduler runs the dispatched kernels since the
    // blocked-stage engine landed: compressed indices must build and
    // agree with the uncompressed plan bit for bit (same row kernels,
    // same schedule).
    PlanOptions o;
    o.scheduler = Scheduler::kLevels;
    o.reorder = false;
    o.index_compress = true;
    auto plan = MpkPlan::build(a, o);
    o.index_compress = false;
    auto ref = MpkPlan::build(a, o);
    const auto x = test::random_vector(a.rows(), 11);
    std::vector<double> yc(a.rows()), yr(a.rows());
    plan.power(x, 4, yc);
    ref.power(x, 4, yr);
    for (index_t i = 0; i < a.rows(); ++i) EXPECT_EQ(yc[i], yr[i]);
  }
  {
    // Prefetch distance is range-checked.
    PlanOptions o;
    o.prefetch_dist = -1;
    EXPECT_THROW(MpkPlan::build(a, o), Error);
    o.prefetch_dist = 4096;
    EXPECT_THROW(MpkPlan::build(a, o), Error);
  }
}

TEST(FbSimd, PrefetchDistanceDoesNotChangeFastResults) {
  const auto a = test::random_matrix(300, 8.0, /*symmetric=*/true, 23);
  const auto x = test::random_vector(a.rows(), 7);
  const int k = 6;

  AlignedVector<double> ref;
  for (const int dist : {0, 4, 16, 64, 1024}) {
    PlanOptions o;
    o.parallel = false;
    o.kernel_backend = resolve_backend(KernelBackend::kAuto);
    o.prefetch_dist = dist;
    auto p = MpkPlan::build(a, o);
    AlignedVector<double> y(x.size());
    p.power(x, k, y);
    if (ref.empty()) {
      ref = y;
    } else {
      for (std::size_t i = 0; i < y.size(); ++i)
        ASSERT_EQ(ref[i], y[i]) << "dist=" << dist << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace fbmpk
