// End-to-end tests of the public MpkPlan API.
#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "gen/stencil.hpp"
#include "gen/suite.hpp"
#include "kernels/mpk_baseline.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

TEST(Plan, PowerMatchesBaselineOnGrid) {
  const auto a = gen::make_laplacian_2d(30, 30);
  const index_t n = a.rows();
  auto plan = MpkPlan::build(a);
  const auto x = test::random_vector(n, 1);
  AlignedVector<double> y(n), y_base(n);
  plan.power(x, 5, y);
  MpkWorkspace<double> mws;
  mpk_power<double>(a, x, 5, y_base, mws);
  test::expect_near_rel(y, y_base, 1e-9);
}

TEST(Plan, AllOptionCombinationsAgree) {
  const auto a = test::random_matrix(300, 8.0, true, 7);
  const index_t n = a.rows();
  const auto x = test::random_vector(n, 8);
  AlignedVector<double> ref(n);
  MpkWorkspace<double> mws;
  mpk_power<double>(a, x, 6, ref, mws);

  for (bool reorder : {false, true}) {
    for (bool parallel : {false, true}) {
      if (parallel && !reorder) continue;  // rejected combination
      for (auto variant : {FbVariant::kBtb, FbVariant::kSplit}) {
        PlanOptions opts;
        opts.reorder = reorder;
        opts.parallel = parallel;
        opts.variant = variant;
        opts.abmc.num_blocks = 32;
        auto plan = MpkPlan::build(a, opts);
        AlignedVector<double> y(n);
        plan.power(x, 6, y);
        test::expect_near_rel(y, ref, 1e-8, "option combo");
      }
    }
  }
}

TEST(Plan, ParallelWithoutReorderThrows) {
  const auto a = gen::make_laplacian_2d(5, 5);
  PlanOptions opts;
  opts.reorder = false;
  opts.parallel = true;
  EXPECT_THROW(MpkPlan::build(a, opts), Error);
}

TEST(Plan, RejectsNonSquareAndEmpty) {
  CooMatrix<double> coo(2, 3);
  coo.add(0, 0, 1.0);
  EXPECT_THROW(MpkPlan::build(CsrMatrix<double>::from_coo(coo)), Error);
  EXPECT_THROW(MpkPlan::build(CsrMatrix<double>()), Error);
}

TEST(Plan, PowerAllReturnsBasisInOriginalSpace) {
  const auto a = test::random_matrix(80, 5.0, false, 9);
  auto plan = MpkPlan::build(a);
  const auto x = test::random_vector(80, 10);
  const int k = 4;
  AlignedVector<double> basis(80 * (k + 1));
  plan.power_all(x, k, basis);
  for (int p = 0; p <= k; ++p) {
    const auto ref = test::dense_power_reference(a, x, p);
    test::expect_near_rel(
        std::span<const double>(basis).subspan(80 * p, 80), ref, 1e-8);
  }
}

TEST(Plan, PolynomialInOriginalSpace) {
  const auto a = test::random_matrix(90, 6.0, true, 11);
  auto plan = MpkPlan::build(a);
  const auto x = test::random_vector(90, 12);
  const AlignedVector<double> coeffs{2.0, -1.0, 0.5};
  AlignedVector<double> y(90), ref(90);
  plan.polynomial(coeffs, x, y);
  MpkWorkspace<double> mws;
  mpk_polynomial<double>(a, coeffs, x, ref, mws);
  test::expect_near_rel(y, ref, 1e-9);
}

TEST(Plan, StatsArePopulated) {
  const auto a = gen::make_laplacian_2d(40, 40);
  PlanOptions opts;
  opts.abmc.num_blocks = 64;
  auto plan = MpkPlan::build(a, opts);
  EXPECT_EQ(plan.stats().num_blocks, 64);
  EXPECT_GE(plan.stats().num_colors, 2);
  EXPECT_GT(plan.stats().storage_bytes, 0u);
  EXPECT_GE(plan.stats().build_seconds, plan.stats().reorder_seconds);
  EXPECT_EQ(plan.rows(), a.rows());
  EXPECT_EQ(plan.permutation().size(), a.rows());
}

TEST(Plan, ExternalWorkspaceSupportsConcurrentStreams) {
  const auto a = test::random_matrix(100, 5.0, true, 13);
  auto plan = MpkPlan::build(a);
  const auto x1 = test::random_vector(100, 14);
  const auto x2 = test::random_vector(100, 15);
  MpkPlan::Workspace w1, w2;
  AlignedVector<double> y1(100), y2(100);
  const MpkPlan& cref = plan;
  cref.power(x1, 3, y1, w1);
  cref.power(x2, 3, y2, w2);
  const auto r1 = test::dense_power_reference(a, x1, 3);
  const auto r2 = test::dense_power_reference(a, x2, 3);
  test::expect_near_rel(y1, r1, 1e-9);
  test::expect_near_rel(y2, r2, 1e-9);
}

TEST(Plan, PowerKZeroReturnsInput) {
  const auto a = gen::make_laplacian_2d(8, 8);
  auto plan = MpkPlan::build(a);
  const auto x = test::random_vector(64, 16);
  AlignedVector<double> y(64);
  plan.power(x, 0, y);
  EXPECT_TRUE(std::equal(x.begin(), x.end(), y.begin()));
}

TEST(Plan, SizeMismatchesThrow) {
  const auto a = gen::make_laplacian_2d(6, 6);
  auto plan = MpkPlan::build(a);
  AlignedVector<double> x(36), y_bad(35);
  EXPECT_THROW(plan.power(x, 2, y_bad), Error);
  AlignedVector<double> basis_bad(36 * 2);
  EXPECT_THROW(plan.power_all(x, 2, basis_bad), Error);
  AlignedVector<double> y(36);
  EXPECT_THROW(plan.polynomial({}, x, y), Error);
}

TEST(Plan, WholeSuiteSmallScale) {
  for (const auto& name : gen::suite_names()) {
    const auto m = gen::make_suite_matrix(name, 0.02);
    const index_t n = m.matrix.rows();
    PlanOptions opts;
    opts.abmc.num_blocks = 64;
    auto plan = MpkPlan::build(m.matrix, opts);
    const auto x = test::random_vector(n, 17);
    AlignedVector<double> y(n), ref(n);
    plan.power(x, 5, y);
    MpkWorkspace<double> mws;
    mpk_power<double>(m.matrix, x, 5, ref, mws);
    test::expect_near_rel(y, ref, 1e-7, name.c_str());
  }
}

}  // namespace
}  // namespace fbmpk
