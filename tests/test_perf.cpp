// Tests for src/perf: analytic traffic model, cache simulator, parallel
// cost model and harness utilities.
#include <gtest/gtest.h>

#include "gen/stencil.hpp"
#include "support/aligned_buffer.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/mpk_baseline.hpp"
#include "kernels/spmv.hpp"
#include "perf/cache_sim.hpp"
#include "perf/cost_model.hpp"
#include "perf/harness.hpp"
#include "perf/traffic_model.hpp"
#include "reorder/abmc.hpp"
#include "sparse/split.hpp"
#include "test_util.hpp"

namespace fbmpk::perf {
namespace {

TEST(TrafficModel, SweepCountsMatchPaperFormulas) {
  // §III-B: standard reads A k times; FBMPK ~(k+1)/2 times.
  EXPECT_DOUBLE_EQ(standard_sweep_count(5), 5.0);
  EXPECT_DOUBLE_EQ(fbmpk_sweep_count(3), 2.0);
  EXPECT_DOUBLE_EQ(fbmpk_sweep_count(9), 5.0);
  EXPECT_DOUBLE_EQ(fbmpk_sweep_count(6), 3.5);
  EXPECT_DOUBLE_EQ(fbmpk_sweep_count(1), 1.0);
}

TEST(TrafficModel, RatioApproachesHalfForDenseRowsAndLargeK) {
  MatrixShape m;
  m.rows = 100000;
  m.nnz = 100000 * 80;  // audikw-like density
  m.diag_entries = 100000;
  // k=9: theory (k+1)/2k = 0.556 plus vector overhead.
  const double r = traffic_ratio(m, 9);
  EXPECT_GT(r, 0.5);
  EXPECT_LT(r, 0.65);
}

TEST(TrafficModel, SparseMatricesBenefitLess) {
  // §V-C: G3_circuit-like sparsity (~4.8/row) has vector-dominated
  // traffic, so the ratio is much worse than the dense-row case.
  MatrixShape sparse{100000, 100000 * 5, 100000};
  MatrixShape dense{100000, 100000 * 80, 100000};
  EXPECT_GT(traffic_ratio(sparse, 9), traffic_ratio(dense, 9));
}

TEST(TrafficModel, RatioImprovesWithK) {
  MatrixShape m{100000, 100000 * 40, 100000};
  EXPECT_GT(traffic_ratio(m, 3), traffic_ratio(m, 6));
  EXPECT_GT(traffic_ratio(m, 6), traffic_ratio(m, 9));
}

TEST(TrafficModel, MatrixBytesScaleWithSweeps) {
  MatrixShape m{1000, 20000, 1000};
  const auto t3 = standard_mpk_traffic(m, 3);
  const auto t9 = standard_mpk_traffic(m, 9);
  EXPECT_EQ(t9.matrix_bytes, 3 * t3.matrix_bytes);
}

TEST(CacheSim, ColdMissesThenHits) {
  CacheHierarchy sim({CacheConfig{4096, 4, 64}});
  double data[8] = {};
  sim.access(reinterpret_cast<std::uintptr_t>(&data[0]), false);
  EXPECT_EQ(sim.level_stats(0).misses, 1u);
  sim.access(reinterpret_cast<std::uintptr_t>(&data[1]), false);  // same line
  EXPECT_EQ(sim.level_stats(0).hits, 1u);
  EXPECT_EQ(sim.dram_read_bytes(), 64u);
}

TEST(CacheSim, CapacityEvictionCausesRereads) {
  // 4 KB direct-ish cache; stream 64 KB twice: everything misses twice.
  CacheHierarchy sim({CacheConfig{4096, 4, 64}});
  AlignedVector<double> data(8192);
  for (int pass = 0; pass < 2; ++pass)
    for (std::size_t i = 0; i < data.size(); i += 8)
      sim.access(reinterpret_cast<std::uintptr_t>(&data[i]), false);
  EXPECT_EQ(sim.dram_read_bytes(), 2u * data.size() * sizeof(double));
}

TEST(CacheSim, FitsInCacheReadOnceRegime) {
  // Working set smaller than the cache: second pass hits entirely.
  CacheHierarchy sim({CacheConfig{64 * 1024, 8, 64}});
  AlignedVector<double> data(1024);  // 8 KB
  for (int pass = 0; pass < 3; ++pass)
    for (auto& v : data) sim.access(reinterpret_cast<std::uintptr_t>(&v), false);
  EXPECT_EQ(sim.dram_read_bytes(), data.size() * sizeof(double));
}

TEST(CacheSim, DirtyEvictionWritesBack) {
  CacheHierarchy sim({CacheConfig{4096, 4, 64}});
  AlignedVector<double> data(4096);  // 32 KB streamed writes
  for (std::size_t i = 0; i < data.size(); i += 8)
    sim.access(reinterpret_cast<std::uintptr_t>(&data[i]), true);
  sim.flush();
  EXPECT_EQ(sim.dram_write_bytes(), data.size() * sizeof(double));
}

TEST(CacheSim, MultiLevelFiltersTraffic) {
  // Working set fits L2 but not L1: DRAM sees it only once.
  CacheHierarchy sim({CacheConfig{4096, 4, 64},
                      CacheConfig{128 * 1024, 8, 64}});
  AlignedVector<double> data(8192);  // 64 KB
  for (int pass = 0; pass < 4; ++pass)
    for (std::size_t i = 0; i < data.size(); i += 8)
      sim.access(reinterpret_cast<std::uintptr_t>(&data[i]), false);
  EXPECT_EQ(sim.dram_read_bytes(), data.size() * sizeof(double));
  EXPECT_GT(sim.level_stats(0).misses, 3u * 1024u);  // L1 thrashes
}

TEST(CacheSim, ClearResetsEverything) {
  CacheHierarchy sim({CacheConfig{4096, 4, 64}});
  double v = 0;
  sim.access(reinterpret_cast<std::uintptr_t>(&v), true);
  sim.clear();
  EXPECT_EQ(sim.dram_read_bytes(), 0u);
  EXPECT_EQ(sim.level_stats(0).misses, 0u);
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(CacheHierarchy({}), Error);
  EXPECT_THROW(CacheHierarchy({CacheConfig{0, 8, 64}}), Error);
  EXPECT_THROW(CacheHierarchy({CacheConfig{4096, 8, 48}}), Error);
}

TEST(CacheSim, TracedSpmvTrafficNearMatrixSize) {
  // Matrix far larger than the cache: DRAM reads of one SpMV must be
  // close to (and at least) the matrix + vector footprint.
  const auto a = test::random_matrix(20000, 16.0, true, 3);
  const auto x = test::random_vector(a.rows(), 4);
  AlignedVector<double> y(a.rows());
  // L1 far smaller than the matrix, L2 large enough to hold the dense
  // vectors — the standard SpMV streaming regime.
  CacheHierarchy sim({CacheConfig{32 * 1024, 8, 64},
                      CacheConfig{1024 * 1024, 16, 64}});
  CacheTracer tracer{&sim};
  spmv_traced<double>(a, x, y, tracer, SpmvExec::kSerial);
  const double matrix_bytes =
      static_cast<double>(csr_sweep_bytes(a.rows(), a.nnz(), 8));
  const double measured = static_cast<double>(sim.dram_read_bytes());
  EXPECT_GT(measured, matrix_bytes * 0.9);
  EXPECT_LT(measured, matrix_bytes * 2.5);  // + vector gather traffic
}

TEST(CacheSim, TracedFbmpkReadsLessThanTracedBaseline) {
  // The headline claim, measured in simulation (Fig 9's mechanism).
  const auto a = test::random_matrix(20000, 16.0, true, 5);
  const index_t n = a.rows();
  const auto x = test::random_vector(n, 6);
  const auto s = split_triangular(a);
  const int k = 6;

  CacheHierarchy sim_fb = make_xeon_like_hierarchy(0.02);
  CacheTracer tr_fb{&sim_fb};
  FbWorkspace<double> fws;
  AlignedVector<double> y(n);
  fbmpk_sweep_btb(
      s, std::span<const double>(x), k, fws,
      [&](int p, index_t i, double v) {
        if (p == k) y[i] = v;
      },
      tr_fb);
  sim_fb.flush();

  CacheHierarchy sim_base = make_xeon_like_hierarchy(0.02);
  CacheTracer tr_base{&sim_base};
  MpkWorkspace<double> mws;
  mpk_standard_sweep_traced(
      a, std::span<const double>(x), k, mws,
      [&](int, index_t, double) {}, tr_base, SpmvExec::kSerial);
  sim_base.flush();

  const double ratio = static_cast<double>(sim_fb.dram_total_bytes()) /
                       static_cast<double>(sim_base.dram_total_bytes());
  // Theory for k=6: (k+1)/2k = 0.58; vector overhead pushes it up, but
  // it must clearly beat 1.0.
  EXPECT_LT(ratio, 0.85);
  EXPECT_GT(ratio, 0.45);
}

TEST(CostModel, FourPlatformsExist) {
  EXPECT_EQ(paper_platforms().size(), 4u);
  EXPECT_EQ(platform_by_name("Xeon").name, "Xeon");
  EXPECT_THROW(platform_by_name("M1"), Error);
}

TEST(CostModel, SpeedupGrowsThenSaturates) {
  const auto a = gen::make_laplacian_3d(30, 30, 30);
  AbmcOptions opts;
  opts.num_blocks = 512;
  const auto o = abmc_order(a, opts);
  const auto permuted = permute_symmetric(a, o.perm);
  const auto w = WorkloadShape::of(permuted, o);
  const auto p = platform_by_name("FT2000+");

  double prev = 0.0;
  for (int t : {1, 4, 16, 64}) {
    const double s = predict_fbmpk_scalability(p, w, 5, t);
    EXPECT_GT(s, prev * 0.99) << t << " threads";
    prev = s;
  }
  // Scaling must be sublinear at 64 threads but still significant.
  EXPECT_GT(prev, 4.0);
  EXPECT_LT(prev, 64.0);
}

// A paper-scale workload (audikw_1-like: 0.94M rows, 78M nnz) described
// directly — the model needs only the shape, not a real matrix.
WorkloadShape paper_scale_workload(index_t colors = 4,
                                   index_t blocks = 512) {
  WorkloadShape w;
  w.rows = 940'000;
  w.nnz = 77'650'000;
  for (index_t c = 0; c < colors; ++c) {
    w.blocks_per_color.push_back(blocks / colors);
    w.nnz_per_color.push_back(w.nnz / colors);
  }
  return w;
}

TEST(CostModel, FbmpkBeatsStandardAtEqualThreadsOnPaperScale) {
  const auto w = paper_scale_workload();
  for (const auto& p : paper_platforms()) {
    const double std_s = predict_standard_mpk_seconds(p, w, 5, p.cores);
    const double fb_s = predict_fbmpk_seconds(p, w, 5, p.cores);
    EXPECT_LT(fb_s, std_s) << p.name;
    // Fig 7 regime: speedups live between 1x and ~2.5x.
    EXPECT_LT(std_s / fb_s, 2.6) << p.name;
  }
}

TEST(CostModel, BarriersDominateTinyMatrices) {
  // The cant phenomenon (§V-A): on a matrix 500x smaller, FBMPK's extra
  // color barriers can erase the traffic win at full thread count.
  auto w = paper_scale_workload();
  w.rows /= 500;
  w.nnz /= 500;
  for (auto& v : w.nnz_per_color) v /= 500;
  const auto p = platform_by_name("FT2000+");
  const double std_s = predict_standard_mpk_seconds(p, w, 5, p.cores);
  const double fb_s = predict_fbmpk_seconds(p, w, 5, p.cores);
  EXPECT_GT(fb_s, std_s * 0.8);  // no clear FBMPK win here
}

TEST(CostModel, SmallMatrixSuffersFromBarriers) {
  // cant's behavior (§V-A): tiny blocks per color make many-thread runs
  // barrier-bound, so speedup over few threads degrades or stalls.
  const auto a = gen::make_laplacian_2d(40, 40);  // 1600 rows only
  AbmcOptions opts;
  opts.num_blocks = 512;
  const auto o = abmc_order(a, opts);
  const auto permuted = permute_symmetric(a, o.perm);
  const auto w = WorkloadShape::of(permuted, o);
  const auto p = platform_by_name("FT2000+");
  const double s24 = predict_fbmpk_scalability(p, w, 5, 24);
  const double s64 = predict_fbmpk_scalability(p, w, 5, 64);
  EXPECT_LT(s64, s24 * 1.5);  // no meaningful gain from 24 -> 64
}

TEST(Harness, TimeRunsCollectsRequestedReps) {
  int calls = 0;
  const auto stats = time_runs([&] { ++calls; }, 5, 2);
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(stats.count(), 5u);
}

TEST(Harness, TableFormatting) {
  EXPECT_EQ(Table::fmt(1.234567, 2), "1.23");
  EXPECT_EQ(Table::fmt_ratio(1.5), "1.50x");
  EXPECT_EQ(Table::fmt_percent(0.581), "58.1%");
}

TEST(Harness, TableRejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Harness, ParseOptions) {
  const char* argv[] = {"bench",          "--scale=0.5",
                        "--reps=7",       "--matrices=pwtk,cant",
                        "--k=3,5,7",      "--threads=4",
                        "--blocks=1024",  "--warmup=0"};
  const auto o =
      BenchOptions::parse(8, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(o.scale, 0.5);
  EXPECT_EQ(o.reps, 7);
  EXPECT_EQ(o.matrices, (std::vector<std::string>{"pwtk", "cant"}));
  EXPECT_EQ(o.powers, (std::vector<int>{3, 5, 7}));
  EXPECT_EQ(o.threads, 4);
  EXPECT_EQ(o.num_blocks, 1024);
  EXPECT_EQ(o.warmup, 0);
}

TEST(Harness, ParseRejectsUnknownFlag) {
  const char* argv[] = {"bench", "--bogus=1"};
  EXPECT_THROW(BenchOptions::parse(2, const_cast<char**>(argv)), Error);
}

}  // namespace
}  // namespace fbmpk::perf
