// Tests for src/perf: analytic traffic model, cache simulator, parallel
// cost model and harness utilities.
#include <gtest/gtest.h>

#include "core/fbmpk.hpp"
#include "gen/stencil.hpp"
#include "support/aligned_buffer.hpp"
#include "telemetry/hw_counters.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/mpk_baseline.hpp"
#include "kernels/spmv.hpp"
#include "gen/kkt.hpp"
#include "gen/random_sparse.hpp"
#include "perf/cache_sim.hpp"
#include "perf/cost_model.hpp"
#include "perf/harness.hpp"
#include "perf/sweep_replay.hpp"
#include "perf/traffic_model.hpp"
#include "reorder/abmc.hpp"
#include "sparse/split.hpp"
#include "test_util.hpp"

namespace fbmpk::perf {
namespace {

TEST(TrafficModel, SweepCountsMatchPaperFormulas) {
  // §III-B: standard reads A k times; FBMPK ~(k+1)/2 times.
  EXPECT_DOUBLE_EQ(standard_sweep_count(5), 5.0);
  EXPECT_DOUBLE_EQ(fbmpk_sweep_count(3), 2.0);
  EXPECT_DOUBLE_EQ(fbmpk_sweep_count(9), 5.0);
  EXPECT_DOUBLE_EQ(fbmpk_sweep_count(6), 3.5);
  EXPECT_DOUBLE_EQ(fbmpk_sweep_count(1), 1.0);
}

TEST(TrafficModel, RatioApproachesHalfForDenseRowsAndLargeK) {
  MatrixShape m;
  m.rows = 100000;
  m.nnz = 100000 * 80;  // audikw-like density
  m.diag_entries = 100000;
  // k=9: theory (k+1)/2k = 0.556 plus vector overhead.
  const double r = traffic_ratio(m, 9);
  EXPECT_GT(r, 0.5);
  EXPECT_LT(r, 0.65);
}

TEST(TrafficModel, SparseMatricesBenefitLess) {
  // §V-C: G3_circuit-like sparsity (~4.8/row) has vector-dominated
  // traffic, so the ratio is much worse than the dense-row case.
  MatrixShape sparse{100000, 100000 * 5, 100000};
  MatrixShape dense{100000, 100000 * 80, 100000};
  EXPECT_GT(traffic_ratio(sparse, 9), traffic_ratio(dense, 9));
}

TEST(TrafficModel, RatioImprovesWithK) {
  MatrixShape m{100000, 100000 * 40, 100000};
  EXPECT_GT(traffic_ratio(m, 3), traffic_ratio(m, 6));
  EXPECT_GT(traffic_ratio(m, 6), traffic_ratio(m, 9));
}

TEST(TrafficModel, MatrixBytesScaleWithSweeps) {
  MatrixShape m{1000, 20000, 1000};
  const auto t3 = standard_mpk_traffic(m, 3);
  const auto t9 = standard_mpk_traffic(m, 9);
  EXPECT_EQ(t9.matrix_bytes, 3 * t3.matrix_bytes);
}

TEST(CacheSim, ColdMissesThenHits) {
  CacheHierarchy sim({CacheConfig{4096, 4, 64}});
  double data[8] = {};
  sim.access(reinterpret_cast<std::uintptr_t>(&data[0]), false);
  EXPECT_EQ(sim.level_stats(0).misses, 1u);
  sim.access(reinterpret_cast<std::uintptr_t>(&data[1]), false);  // same line
  EXPECT_EQ(sim.level_stats(0).hits, 1u);
  EXPECT_EQ(sim.dram_read_bytes(), 64u);
}

TEST(CacheSim, CapacityEvictionCausesRereads) {
  // 4 KB direct-ish cache; stream 64 KB twice: everything misses twice.
  CacheHierarchy sim({CacheConfig{4096, 4, 64}});
  AlignedVector<double> data(8192);
  for (int pass = 0; pass < 2; ++pass)
    for (std::size_t i = 0; i < data.size(); i += 8)
      sim.access(reinterpret_cast<std::uintptr_t>(&data[i]), false);
  EXPECT_EQ(sim.dram_read_bytes(), 2u * data.size() * sizeof(double));
}

TEST(CacheSim, FitsInCacheReadOnceRegime) {
  // Working set smaller than the cache: second pass hits entirely.
  CacheHierarchy sim({CacheConfig{64 * 1024, 8, 64}});
  AlignedVector<double> data(1024);  // 8 KB
  for (int pass = 0; pass < 3; ++pass)
    for (auto& v : data) sim.access(reinterpret_cast<std::uintptr_t>(&v), false);
  EXPECT_EQ(sim.dram_read_bytes(), data.size() * sizeof(double));
}

TEST(CacheSim, DirtyEvictionWritesBack) {
  CacheHierarchy sim({CacheConfig{4096, 4, 64}});
  AlignedVector<double> data(4096);  // 32 KB streamed writes
  for (std::size_t i = 0; i < data.size(); i += 8)
    sim.access(reinterpret_cast<std::uintptr_t>(&data[i]), true);
  sim.flush();
  EXPECT_EQ(sim.dram_write_bytes(), data.size() * sizeof(double));
}

TEST(CacheSim, MultiLevelFiltersTraffic) {
  // Working set fits L2 but not L1: DRAM sees it only once.
  CacheHierarchy sim({CacheConfig{4096, 4, 64},
                      CacheConfig{128 * 1024, 8, 64}});
  AlignedVector<double> data(8192);  // 64 KB
  for (int pass = 0; pass < 4; ++pass)
    for (std::size_t i = 0; i < data.size(); i += 8)
      sim.access(reinterpret_cast<std::uintptr_t>(&data[i]), false);
  EXPECT_EQ(sim.dram_read_bytes(), data.size() * sizeof(double));
  EXPECT_GT(sim.level_stats(0).misses, 3u * 1024u);  // L1 thrashes
}

TEST(CacheSim, ClearResetsEverything) {
  CacheHierarchy sim({CacheConfig{4096, 4, 64}});
  double v = 0;
  sim.access(reinterpret_cast<std::uintptr_t>(&v), true);
  sim.clear();
  EXPECT_EQ(sim.dram_read_bytes(), 0u);
  EXPECT_EQ(sim.level_stats(0).misses, 0u);
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(CacheHierarchy({}), Error);
  EXPECT_THROW(CacheHierarchy({CacheConfig{0, 8, 64}}), Error);
  EXPECT_THROW(CacheHierarchy({CacheConfig{4096, 8, 48}}), Error);
}

TEST(CacheSim, TracedSpmvTrafficNearMatrixSize) {
  // Matrix far larger than the cache: DRAM reads of one SpMV must be
  // close to (and at least) the matrix + vector footprint.
  const auto a = test::random_matrix(20000, 16.0, true, 3);
  const auto x = test::random_vector(a.rows(), 4);
  AlignedVector<double> y(a.rows());
  // L1 far smaller than the matrix, L2 large enough to hold the dense
  // vectors — the standard SpMV streaming regime.
  CacheHierarchy sim({CacheConfig{32 * 1024, 8, 64},
                      CacheConfig{1024 * 1024, 16, 64}});
  CacheTracer tracer{&sim};
  spmv_traced<double>(a, x, y, tracer, SpmvExec::kSerial);
  const double matrix_bytes =
      static_cast<double>(csr_sweep_bytes(a.rows(), a.nnz(), 8));
  const double measured = static_cast<double>(sim.dram_read_bytes());
  EXPECT_GT(measured, matrix_bytes * 0.9);
  EXPECT_LT(measured, matrix_bytes * 2.5);  // + vector gather traffic
}

TEST(CacheSim, TracedFbmpkReadsLessThanTracedBaseline) {
  // The headline claim, measured in simulation (Fig 9's mechanism).
  const auto a = test::random_matrix(20000, 16.0, true, 5);
  const index_t n = a.rows();
  const auto x = test::random_vector(n, 6);
  const auto s = split_triangular(a);
  const int k = 6;

  CacheHierarchy sim_fb = make_xeon_like_hierarchy(0.02);
  CacheTracer tr_fb{&sim_fb};
  FbWorkspace<double> fws;
  AlignedVector<double> y(n);
  fbmpk_sweep_btb(
      s, std::span<const double>(x), k, fws,
      [&](int p, index_t i, double v) {
        if (p == k) y[i] = v;
      },
      tr_fb);
  sim_fb.flush();

  CacheHierarchy sim_base = make_xeon_like_hierarchy(0.02);
  CacheTracer tr_base{&sim_base};
  MpkWorkspace<double> mws;
  mpk_standard_sweep_traced(
      a, std::span<const double>(x), k, mws,
      [&](int, index_t, double) {}, tr_base, SpmvExec::kSerial);
  sim_base.flush();

  const double ratio = static_cast<double>(sim_fb.dram_total_bytes()) /
                       static_cast<double>(sim_base.dram_total_bytes());
  // Theory for k=6: (k+1)/2k = 0.58; vector overhead pushes it up, but
  // it must clearly beat 1.0.
  EXPECT_LT(ratio, 0.85);
  EXPECT_GT(ratio, 0.45);
}

TEST(CostModel, FourPlatformsExist) {
  EXPECT_EQ(paper_platforms().size(), 4u);
  EXPECT_EQ(platform_by_name("Xeon").name, "Xeon");
  EXPECT_THROW(platform_by_name("M1"), Error);
}

TEST(CostModel, SpeedupGrowsThenSaturates) {
  const auto a = gen::make_laplacian_3d(30, 30, 30);
  AbmcOptions opts;
  opts.num_blocks = 512;
  const auto o = abmc_order(a, opts);
  const auto permuted = permute_symmetric(a, o.perm);
  const auto w = WorkloadShape::of(permuted, o);
  const auto p = platform_by_name("FT2000+");

  double prev = 0.0;
  for (int t : {1, 4, 16, 64}) {
    const double s = predict_fbmpk_scalability(p, w, 5, t);
    EXPECT_GT(s, prev * 0.99) << t << " threads";
    prev = s;
  }
  // Scaling must be sublinear at 64 threads but still significant.
  EXPECT_GT(prev, 4.0);
  EXPECT_LT(prev, 64.0);
}

// A paper-scale workload (audikw_1-like: 0.94M rows, 78M nnz) described
// directly — the model needs only the shape, not a real matrix.
WorkloadShape paper_scale_workload(index_t colors = 4,
                                   index_t blocks = 512) {
  WorkloadShape w;
  w.rows = 940'000;
  w.nnz = 77'650'000;
  for (index_t c = 0; c < colors; ++c) {
    w.blocks_per_color.push_back(blocks / colors);
    w.nnz_per_color.push_back(w.nnz / colors);
  }
  return w;
}

TEST(CostModel, FbmpkBeatsStandardAtEqualThreadsOnPaperScale) {
  const auto w = paper_scale_workload();
  for (const auto& p : paper_platforms()) {
    const double std_s = predict_standard_mpk_seconds(p, w, 5, p.cores);
    const double fb_s = predict_fbmpk_seconds(p, w, 5, p.cores);
    EXPECT_LT(fb_s, std_s) << p.name;
    // Fig 7 regime: speedups live between 1x and ~2.5x.
    EXPECT_LT(std_s / fb_s, 2.6) << p.name;
  }
}

TEST(CostModel, BarriersDominateTinyMatrices) {
  // The cant phenomenon (§V-A): on a matrix 500x smaller, FBMPK's extra
  // color barriers can erase the traffic win at full thread count.
  auto w = paper_scale_workload();
  w.rows /= 500;
  w.nnz /= 500;
  for (auto& v : w.nnz_per_color) v /= 500;
  const auto p = platform_by_name("FT2000+");
  const double std_s = predict_standard_mpk_seconds(p, w, 5, p.cores);
  const double fb_s = predict_fbmpk_seconds(p, w, 5, p.cores);
  EXPECT_GT(fb_s, std_s * 0.8);  // no clear FBMPK win here
}

TEST(CostModel, SmallMatrixSuffersFromBarriers) {
  // cant's behavior (§V-A): tiny blocks per color make many-thread runs
  // barrier-bound, so speedup over few threads degrades or stalls.
  const auto a = gen::make_laplacian_2d(40, 40);  // 1600 rows only
  AbmcOptions opts;
  opts.num_blocks = 512;
  const auto o = abmc_order(a, opts);
  const auto permuted = permute_symmetric(a, o.perm);
  const auto w = WorkloadShape::of(permuted, o);
  const auto p = platform_by_name("FT2000+");
  const double s24 = predict_fbmpk_scalability(p, w, 5, 24);
  const double s64 = predict_fbmpk_scalability(p, w, 5, 64);
  EXPECT_LT(s64, s24 * 1.5);  // no meaningful gain from 24 -> 64
}

TEST(Harness, TimeRunsCollectsRequestedReps) {
  int calls = 0;
  const auto stats = time_runs([&] { ++calls; }, 5, 2);
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(stats.count(), 5u);
}

TEST(Harness, TableFormatting) {
  EXPECT_EQ(Table::fmt(1.234567, 2), "1.23");
  EXPECT_EQ(Table::fmt_ratio(1.5), "1.50x");
  EXPECT_EQ(Table::fmt_percent(0.581), "58.1%");
}

TEST(Harness, TableRejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Harness, ParseOptions) {
  const char* argv[] = {"bench",          "--scale=0.5",
                        "--reps=7",       "--matrices=pwtk,cant",
                        "--k=3,5,7",      "--threads=4",
                        "--blocks=1024",  "--warmup=0"};
  const auto o =
      BenchOptions::parse(8, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(o.scale, 0.5);
  EXPECT_EQ(o.reps, 7);
  EXPECT_EQ(o.matrices, (std::vector<std::string>{"pwtk", "cant"}));
  EXPECT_EQ(o.powers, (std::vector<int>{3, 5, 7}));
  EXPECT_EQ(o.threads, 4);
  EXPECT_EQ(o.num_blocks, 1024);
  EXPECT_EQ(o.warmup, 0);
}

TEST(Harness, ParseRejectsUnknownFlag) {
  const char* argv[] = {"bench", "--bogus=1"};
  EXPECT_THROW(BenchOptions::parse(2, const_cast<char**>(argv)), Error);
}

// ---------------------------------------------------------------------------
// SharedCacheSim: N private hierarchies over one shared inclusive LLC
// (PR 8). Synthetic streams with hand-counted hit/miss totals.
// ---------------------------------------------------------------------------

// Geometry used throughout: 512 B 2-way private L1 (4 sets) so
// conflicts are easy to construct, one 4 KB 8-way LLC.
SharedCacheSim tiny_shared(int cores, std::size_t llc_bytes = 4096) {
  return SharedCacheSim(cores, {CacheConfig{512, 2, 64}},
                        CacheConfig{llc_bytes, 8, 64});
}

TEST(SharedCacheSim, ColdMissFillsEveryLevelThenHitsInL1) {
  auto sim = tiny_shared(2);
  sim.access(0, 0x1000, false);
  EXPECT_EQ(sim.private_stats(0, 0).misses, 1u);
  EXPECT_EQ(sim.llc_stats().misses, 1u);
  EXPECT_EQ(sim.dram_read_bytes(), 64u);

  sim.access(0, 0x1008, false);  // same line, same core: L1 hit
  EXPECT_EQ(sim.private_stats(0, 0).hits, 1u);
  EXPECT_EQ(sim.dram_read_bytes(), 64u);
}

TEST(SharedCacheSim, SecondCoreHitsSharedLlcWithoutDram) {
  auto sim = tiny_shared(2);
  sim.access(0, 0x1000, false);
  sim.access(1, 0x1000, false);  // private miss, LLC hit — no DRAM
  EXPECT_EQ(sim.private_stats(1, 0).misses, 1u);
  EXPECT_EQ(sim.llc_stats().hits, 1u);
  EXPECT_EQ(sim.dram_read_bytes(), 64u);
}

TEST(SharedCacheSim, AssociativityConflictEvictsLruWay) {
  auto sim = tiny_shared(1);
  // L1: 4 sets * 2 ways. Lines 0x0000, 0x0400, 0x0800 all map to set 0
  // (stride = sets * line = 256 B; use 1 KB stride to be safe).
  sim.access(0, 0x0000, false);
  sim.access(0, 0x0400, false);
  sim.access(0, 0x0000, false);  // hit: makes 0x0400 the LRU way
  EXPECT_EQ(sim.private_stats(0, 0).hits, 1u);
  sim.access(0, 0x0800, false);  // conflict: evicts LRU 0x0400
  sim.access(0, 0x0000, false);  // survives — still a hit
  EXPECT_EQ(sim.private_stats(0, 0).hits, 2u);
  sim.access(0, 0x0400, false);  // was evicted — misses in L1
  EXPECT_EQ(sim.private_stats(0, 0).misses, 4u);
  // All three lines stayed resident in the LLC: one DRAM read each.
  EXPECT_EQ(sim.dram_read_bytes(), 3u * 64u);
}

TEST(SharedCacheSim, InclusiveLlcBackInvalidatesPrivateCopies) {
  // LLC of 8 lines (512 B, 8-way, 1 set), private L1 big enough to
  // hold everything — inclusion is what must evict the private copy.
  SharedCacheSim sim(1, {CacheConfig{64 * 1024, 8, 64}},
                     CacheConfig{512, 8, 64});
  sim.access(0, 0x0000, false);
  for (int i = 1; i <= 8; ++i)  // fill the LLC's single set: evicts 0x0
    sim.access(0, static_cast<std::uintptr_t>(i) * 64, false);
  // The L1 never overflowed, but inclusion dropped its copy of 0x0.
  sim.access(0, 0x0000, false);
  EXPECT_EQ(sim.private_stats(0, 0).misses, 10u);  // 9 cold + 1 re-read
  EXPECT_EQ(sim.dram_read_bytes(), 10u * 64u);
}

TEST(SharedCacheSim, BackInvalidatedDirtyLineIsWrittenToDram) {
  SharedCacheSim sim(1, {CacheConfig{64 * 1024, 8, 64}},
                     CacheConfig{512, 8, 64});
  sim.access(0, 0x0000, true);  // dirty in L1 only
  for (int i = 1; i <= 8; ++i)
    sim.access(0, static_cast<std::uintptr_t>(i) * 64, false);
  // Evicting 0x0 from the LLC found a dirty private copy: one DRAM
  // write, even though the L1 never evicted it.
  EXPECT_EQ(sim.dram_write_bytes(), 64u);
  sim.flush();  // the line is gone everywhere — no double count
  EXPECT_EQ(sim.dram_write_bytes(), 64u);
}

TEST(SharedCacheSim, FlushWritesEachDirtyLineOnce) {
  auto sim = tiny_shared(2);
  sim.access(0, 0x0000, true);
  sim.access(0, 0x0040, true);
  sim.access(1, 0x2000, true);
  sim.access(0, 0x0000, false);  // re-read must not clear dirty
  EXPECT_EQ(sim.dram_write_bytes(), 0u);
  sim.flush();
  EXPECT_EQ(sim.dram_write_bytes(), 3u * 64u);
  sim.flush();  // idempotent: everything clean now
  EXPECT_EQ(sim.dram_write_bytes(), 3u * 64u);
}

TEST(SharedCacheSim, TouchCoversEveryLineOfTheRange) {
  auto sim = tiny_shared(1);
  sim.touch(0, 0x0000, 130, false);  // lines 0, 1, 2
  EXPECT_EQ(sim.dram_read_bytes(), 3u * 64u);
  sim.touch(0, 0x0020, 64, false);  // straddles lines 0 and 1: both hit
  EXPECT_EQ(sim.private_stats(0, 0).hits, 2u);
  EXPECT_EQ(sim.dram_read_bytes(), 3u * 64u);
}

TEST(SharedCacheSim, ClearResetsCountersAndContents) {
  auto sim = tiny_shared(2);
  sim.access(0, 0x0000, true);
  sim.access(1, 0x1000, false);
  sim.clear();
  EXPECT_EQ(sim.dram_read_bytes(), 0u);
  EXPECT_EQ(sim.dram_write_bytes(), 0u);
  EXPECT_EQ(sim.llc_stats().misses, 0u);
  sim.access(0, 0x0000, false);  // cold again after clear
  EXPECT_EQ(sim.private_stats(0, 0).misses, 1u);
  sim.flush();
  EXPECT_EQ(sim.dram_write_bytes(), 0u);  // dirty bit did not survive
}

// ---------------------------------------------------------------------------
// Sampled replay vs the analytic model. In the matrix >> LLC regime
// both count the same compulsory stream, so the sampled replay must
// land within 15% of fbmpk_traffic_mixed on the suite's families.
// ---------------------------------------------------------------------------

void expect_replay_matches_model(const CsrMatrix<double>& a,
                                 const char* label) {
  SCOPED_TRACE(label);
  const int k = 4;
  const AbmcOrdering ord = abmc_order(a, AbmcOptions{});

  ReplayConfig cfg;
  cfg.k = k;
  cfg.threads = 1;  // the analytic model is single-stream
  const ReplayPrediction pred = replay_fbmpk_traffic(a, &ord, cfg);
  ASSERT_GT(pred.replayed_rows, 0);
  ASSERT_GT(pred.dram_read_bytes, 0u);

  const TrafficEstimate model = fbmpk_traffic_mixed(
      MatrixShape::of(a), k, static_cast<double>(sizeof(index_t)),
      ValuePrecision::kFp64);
  const double sim = static_cast<double>(pred.dram_total_bytes());
  const double ref = static_cast<double>(model.total());
  EXPECT_LT(std::abs(sim - ref) / ref, 0.15)
      << "replay " << sim << " vs model " << ref << " ("
      << pred.replayed_rows << " rows sampled, cache scale "
      << pred.cache_scale << ")";
}

TEST(SweepReplay, MatchesAnalyticModelOnStencil) {
  expect_replay_matches_model(gen::make_laplacian_2d(120, 120), "laplacian2d");
}

TEST(SweepReplay, MatchesAnalyticModelOnBlockStencil) {
  gen::BlockStencilOptions o;
  o.dof = 3;
  expect_replay_matches_model(gen::make_block_stencil({16, 16, 16}, o),
                              "stencil3d_dof3");
}

TEST(SweepReplay, MatchesAnalyticModelOnRandomBanded) {
  gen::RandomBandedOptions o;
  o.bandwidth = 600;
  expect_replay_matches_model(gen::make_random_banded(16000, o), "banded");
}

TEST(SweepReplay, MatchesAnalyticModelOnKkt) {
  expect_replay_matches_model(gen::make_kkt_saddle(16, 16, 16, {}), "kkt");
}

TEST(SweepReplay, SamplingBoundsReplayedRowsAndStaysConsistent) {
  const auto a = gen::make_laplacian_2d(100, 100);  // 10k rows
  const AbmcOrdering ord = abmc_order(a, AbmcOptions{});
  ReplayConfig cfg;
  cfg.max_sample_rows = 1024;
  const auto sampled = replay_fbmpk_traffic(a, &ord, cfg);
  EXPECT_LE(sampled.replayed_rows, 2048);  // bound + one block of slack
  EXPECT_LT(sampled.sample_fraction, 0.5);

  // The sampled estimate tracks the full replay within the tolerance
  // the oracle needs for *ranking* (generous 25% here).
  cfg.max_sample_rows = 0;  // replay everything
  const auto full = replay_fbmpk_traffic(a, &ord, cfg);
  EXPECT_EQ(full.replayed_rows, a.rows());
  const double s = static_cast<double>(sampled.dram_total_bytes());
  const double f = static_cast<double>(full.dram_total_bytes());
  EXPECT_LT(std::abs(s - f) / f, 0.25)
      << "sampled " << s << " vs full " << f;
}

TEST(SweepReplay, CompressedIndicesAndFp32ShrinkPrediction) {
  const auto a = gen::make_laplacian_2d(80, 80);
  const AbmcOrdering ord = abmc_order(a, AbmcOptions{});
  ReplayConfig cfg;
  const auto plain = replay_fbmpk_traffic(a, &ord, cfg);

  const double packed = estimate_packed_index_bytes_per_nnz(a, &ord);
  EXPECT_LT(packed, static_cast<double>(sizeof(index_t)));
  cfg.col_index_bytes = packed;
  const auto compressed = replay_fbmpk_traffic(a, &ord, cfg);
  EXPECT_LT(compressed.dram_total_bytes(), plain.dram_total_bytes());

  cfg.matrix_value_bytes = sizeof(float);
  const auto fp32 = replay_fbmpk_traffic(a, &ord, cfg);
  EXPECT_LT(fp32.dram_total_bytes(), compressed.dram_total_bytes());
}

TEST(SweepReplay, BatchedVectorsScaleVectorTrafficOnly) {
  const auto a = gen::make_laplacian_2d(80, 80);
  const AbmcOrdering ord = abmc_order(a, AbmcOptions{});
  ReplayConfig cfg;
  const auto one = replay_fbmpk_traffic(a, &ord, cfg);
  cfg.nvec = 4;
  const auto four = replay_fbmpk_traffic(a, &ord, cfg);
  // More traffic than one vector, less than 4x (matrix read once).
  EXPECT_GT(four.dram_total_bytes(), one.dram_total_bytes());
  EXPECT_LT(four.dram_total_bytes(), 4u * one.dram_total_bytes());
}

TEST(SharedCacheSim, XeonFactoryShapesAndScales) {
  auto sim = make_shared_xeon_like(4, 1.0);
  EXPECT_EQ(sim.cores(), 4);
  EXPECT_EQ(sim.num_private_levels(), 2u);
  EXPECT_EQ(sim.line_bytes(), 64u);
  EXPECT_GT(xeon_like_level_bytes(2, 1.0), xeon_like_level_bytes(1, 1.0));
  EXPECT_GT(xeon_like_level_bytes(1, 1.0), xeon_like_level_bytes(0, 1.0));
  // Scaling shrinks every level but respects the 4 KB floor.
  EXPECT_LT(xeon_like_level_bytes(2, 0.01), xeon_like_level_bytes(2, 1.0));
  EXPECT_GE(xeon_like_level_bytes(0, 1e-9), 4096u);
}

TEST(SharedCacheSim, StreamingStoreSkipsFetchButPaysWriteback) {
  // Write-validate path: a 4 KB write stream through a tiny hierarchy
  // costs no DRAM reads, but every dirty line flushes out.
  auto sim = tiny_shared(1);
  for (std::uintptr_t a = 0; a < 4096; a += 64)
    sim.access(0, a, /*is_write=*/true, /*fetch_on_miss=*/false);
  EXPECT_EQ(sim.dram_read_bytes(), 0u);
  sim.flush();
  EXPECT_EQ(sim.dram_write_bytes(), 4096u);
  // The installed lines are real: re-reading them costs nothing new.
  sim.access(0, 4096 - 64, false);
  EXPECT_EQ(sim.dram_read_bytes(), 0u);
}

TEST(SweepReplay, MatchesPerfEventDramTrafficWhenPmuAvailable) {
  // The acceptance check against real hardware: on machines with
  // direct IMC CAS counters (CAP_PERFMON, bare metal), the replayed
  // prediction must land within 15% of measured DRAM traffic for a
  // DRAM-resident sweep. Skips gracefully everywhere else (VMs,
  // restricted perf_event_paranoid) — the analytic-model agreement
  // tests above still pin the simulator in those environments.
  telemetry::HwCounterGroup hw;
  if (!hw.availability().dram)
    GTEST_SKIP() << "no direct DRAM counters: " << hw.availability().detail;

  const auto a = gen::make_laplacian_2d(1400, 1400);  // ~110 MB > LLC
  const int k = 4;
  MpkPlan plan = MpkPlan::build(a, PlanOptions{});
  AlignedVector<double> x(static_cast<std::size_t>(a.rows()), 1.0);
  AlignedVector<double> y(x.size());
  plan.power(x, k, y);  // warm page tables and thread pool

  constexpr int kReps = 3;
  hw.start();
  for (int r = 0; r < kReps; ++r) plan.power(x, k, y);
  const telemetry::HwCounts counts = hw.stop();
  ASSERT_TRUE(counts.dram_direct);
  const double measured =
      static_cast<double>(counts.memory_bytes()) / kReps;

  ReplayConfig cfg;
  cfg.k = k;
  cfg.threads = plan.sweep_schedule().num_threads;
  const ReplayPrediction pred = replay_fbmpk_traffic(
      a, &plan.schedule(), cfg, &plan.sweep_schedule());
  const double sim = static_cast<double>(pred.dram_total_bytes());
  EXPECT_LT(std::abs(sim - measured) / measured, 0.15)
      << "replay " << sim << " vs measured " << measured;
}

}  // namespace
}  // namespace fbmpk::perf
