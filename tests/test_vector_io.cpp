// Tests for dense-vector file I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/vector_io.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

TEST(VectorIo, RoundTripPreservesValues) {
  const auto v = test::random_vector(100, 3);
  std::stringstream buf;
  write_vector(buf, v);
  const auto back = read_vector(buf);
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(back[i], v[i]);
}

TEST(VectorIo, SkipsCommentsAndBlankLines) {
  std::istringstream in("% header\n1.5\n\n  % another\n-2.0 3.0\n");
  const auto v = read_vector(in);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  EXPECT_DOUBLE_EQ(v[1], -2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(VectorIo, RejectsMalformedValues) {
  std::istringstream in("1.0\nnotanumber\n");
  EXPECT_THROW(read_vector(in), Error);
}

TEST(VectorIo, FileRoundTripAndMissingFile) {
  const auto v = test::random_vector(20, 5);
  const std::string path = ::testing::TempDir() + "/fbmpk_vec.txt";
  write_vector_file(path, v);
  const auto back = read_vector_file(path);
  EXPECT_EQ(back.size(), v.size());
  EXPECT_THROW(read_vector_file("/nonexistent/vec.txt"), Error);
}

}  // namespace
}  // namespace fbmpk
