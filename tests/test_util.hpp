// Shared helpers for the FBMPK test suite.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "gen/random_sparse.hpp"
#include "sparse/csr.hpp"
#include "sparse/ops.hpp"
#include "support/aligned_buffer.hpp"
#include "support/rng.hpp"

namespace fbmpk::test {

/// Minimal xorshift64* generator committed with the test suite. The
/// property harness derives every random choice from it instead of the
/// library's Xoshiro Rng, so a library RNG change can never silently
/// reshuffle the harness's case distribution: a failing seed printed
/// today reproduces the same case forever.
struct Xorshift64 {
  std::uint64_t state;

  explicit Xorshift64(std::uint64_t seed)
      : state(seed != 0 ? seed : 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t next() {
    std::uint64_t x = state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state = x;
    return x * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform in [lo, hi] (inclusive); modulo bias is irrelevant here.
  std::uint64_t in_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next() % (hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

/// Number of randomized property-harness iterations: the
/// FBMPK_PROP_SEEDS environment variable when set (CI runs 5),
/// otherwise a quick default of 2.
inline int property_seed_count() {
  const char* env = std::getenv("FBMPK_PROP_SEEDS");
  if (env == nullptr || *env == '\0') return 2;
  const int n = std::atoi(env);
  return n > 0 ? n : 2;
}

/// Deterministic random vector with entries in [-1, 1).
inline AlignedVector<double> random_vector(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  AlignedVector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.next_double(-1.0, 1.0);
  return v;
}

/// Small random square CSR matrix for property sweeps. Diagonally
/// dominant so powers stay well-scaled.
inline CsrMatrix<double> random_matrix(index_t n, double avg_row_nnz,
                                       bool symmetric, std::uint64_t seed) {
  gen::RandomBandedOptions o;
  o.bandwidth = std::max<index_t>(1, n / 2);
  o.avg_row_nnz = avg_row_nnz;
  o.symmetric = symmetric;
  o.seed = seed;
  return gen::make_random_banded(n, o);
}

/// Reference y = A^k x via the dense representation (O(n^2) per power;
/// use only on small matrices).
inline std::vector<double> dense_power_reference(const CsrMatrix<double>& a,
                                                 std::span<const double> x,
                                                 int k) {
  const index_t n = a.rows();
  const std::vector<double> d = to_dense(a);
  std::vector<double> cur(x.begin(), x.end());
  std::vector<double> nxt(static_cast<std::size_t>(n));
  for (int p = 0; p < k; ++p) {
    for (index_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (index_t j = 0; j < n; ++j)
        sum += d[static_cast<std::size_t>(i) * n + j] * cur[j];
      nxt[i] = sum;
    }
    cur.swap(nxt);
  }
  return cur;
}

/// Relative comparison robust to the large dynamic range of matrix
/// powers: |a - b| <= rtol * (1 + max(|a|, |b|)).
inline void expect_near_rel(std::span<const double> actual,
                            std::span<const double> expected, double rtol,
                            const char* label = "") {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double scale =
        1.0 + std::max(std::abs(actual[i]), std::abs(expected[i]));
    ASSERT_NEAR(actual[i], expected[i], rtol * scale)
        << label << " mismatch at index " << i;
  }
}

}  // namespace fbmpk::test
