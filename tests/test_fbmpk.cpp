// Tests for the serial FBMPK pipeline: correctness against the standard
// MPK baseline and a dense reference, across powers, variants and
// matrix families (property sweeps via TEST_P).
#include <gtest/gtest.h>

#include "gen/stencil.hpp"
#include "gen/suite.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/mpk_baseline.hpp"
#include "sparse/split.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

// Tolerance grows mildly with k: FBMPK reassociates sums, and iterate
// magnitudes grow like ||A||^k.
double rtol_for(int k) { return 1e-12 * std::pow(4.0, k); }

TEST(MpkBaseline, PowerMatchesDenseReference) {
  const auto a = test::random_matrix(60, 5.0, false, 17);
  const auto x = test::random_vector(60, 2);
  MpkWorkspace<double> ws;
  for (int k : {0, 1, 2, 3, 5}) {
    AlignedVector<double> y(60);
    mpk_power<double>(a, x, k, y, ws);
    const auto ref = test::dense_power_reference(a, x, k);
    test::expect_near_rel(y, ref, rtol_for(k));
  }
}

TEST(MpkBaseline, PowerAllStoresEveryIterate) {
  const auto a = test::random_matrix(40, 4.0, true, 19);
  const auto x = test::random_vector(40, 3);
  MpkWorkspace<double> ws;
  const int k = 4;
  AlignedVector<double> basis(40 * (k + 1));
  mpk_power_all<double>(a, x, k, basis, ws);
  for (int p = 0; p <= k; ++p) {
    const auto ref = test::dense_power_reference(a, x, p);
    test::expect_near_rel(
        std::span<const double>(basis).subspan(40 * p, 40), ref,
        rtol_for(p));
  }
}

TEST(MpkBaseline, PolynomialMatchesManualSum) {
  const auto a = test::random_matrix(50, 5.0, false, 23);
  const auto x = test::random_vector(50, 4);
  const AlignedVector<double> coeffs{0.5, -1.0, 0.25, 2.0};
  MpkWorkspace<double> ws;
  AlignedVector<double> y(50);
  mpk_polynomial<double>(a, coeffs, x, y, ws);
  std::vector<double> ref(50, 0.0);
  for (int p = 0; p < 4; ++p) {
    const auto ap = test::dense_power_reference(a, x, p);
    for (index_t i = 0; i < 50; ++i) ref[i] += coeffs[p] * ap[i];
  }
  test::expect_near_rel(y, ref, rtol_for(3));
}

struct FbCase {
  index_t n;
  double avg_nnz;
  bool symmetric;
  std::uint64_t seed;
};

class FbmpkPropertyTest
    : public ::testing::TestWithParam<std::tuple<FbCase, int, FbVariant>> {};

TEST_P(FbmpkPropertyTest, PowerMatchesBaseline) {
  const auto [c, k, variant] = GetParam();
  const auto a = test::random_matrix(c.n, c.avg_nnz, c.symmetric, c.seed);
  const auto x = test::random_vector(c.n, c.seed ^ 0xff);
  const auto s = split_triangular(a);

  AlignedVector<double> y_fb(c.n), y_base(c.n);
  FbWorkspace<double> fws;
  MpkWorkspace<double> mws;
  fbmpk_power<double>(s, x, k, y_fb, fws, variant);
  mpk_power<double>(a, x, k, y_base, mws);
  test::expect_near_rel(y_fb, y_base, rtol_for(k));
}

INSTANTIATE_TEST_SUITE_P(
    PowersAndMatrices, FbmpkPropertyTest,
    ::testing::Combine(
        ::testing::Values(FbCase{30, 4.0, true, 1}, FbCase{64, 6.0, false, 2},
                          FbCase{101, 8.0, true, 3},
                          FbCase{200, 12.0, false, 4},
                          FbCase{17, 3.0, true, 5}),
        ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9),
        ::testing::Values(FbVariant::kBtb, FbVariant::kSplit)));

TEST(Fbmpk, PowerZeroCopiesInput) {
  const auto a = test::random_matrix(20, 3.0, true, 9);
  const auto x = test::random_vector(20, 10);
  const auto s = split_triangular(a);
  FbWorkspace<double> ws;
  AlignedVector<double> y(20);
  fbmpk_power<double>(s, x, 0, y, ws);
  EXPECT_TRUE(std::equal(x.begin(), x.end(), y.begin()));
}

TEST(Fbmpk, PowerOneEqualsSpmv) {
  const auto a = test::random_matrix(80, 6.0, false, 12);
  const auto x = test::random_vector(80, 13);
  const auto s = split_triangular(a);
  FbWorkspace<double> ws;
  AlignedVector<double> y(80);
  fbmpk_power<double>(s, x, 1, y, ws);
  const auto ref = test::dense_power_reference(a, x, 1);
  test::expect_near_rel(y, ref, 1e-12);
}

TEST(Fbmpk, PowerAllMatchesDenseAtEveryPower) {
  const auto a = test::random_matrix(45, 5.0, true, 29);
  const auto x = test::random_vector(45, 30);
  const auto s = split_triangular(a);
  FbWorkspace<double> ws;
  const int k = 6;
  AlignedVector<double> basis(45 * (k + 1));
  fbmpk_power_all<double>(s, x, k, basis, ws);
  for (int p = 0; p <= k; ++p) {
    const auto ref = test::dense_power_reference(a, x, p);
    test::expect_near_rel(
        std::span<const double>(basis).subspan(45 * p, 45), ref,
        rtol_for(p));
  }
}

TEST(Fbmpk, PolynomialMatchesBaselinePolynomial) {
  const auto a = test::random_matrix(70, 7.0, false, 31);
  const auto x = test::random_vector(70, 32);
  const auto s = split_triangular(a);
  // Both parities of top power.
  for (std::size_t terms : {4u, 5u}) {
    AlignedVector<double> coeffs(terms);
    Rng rng(terms);
    for (auto& ci : coeffs) ci = rng.next_double(-1.0, 1.0);
    AlignedVector<double> y_fb(70), y_base(70);
    FbWorkspace<double> fws;
    MpkWorkspace<double> mws;
    fbmpk_polynomial<double>(s, coeffs, x, y_fb, fws);
    mpk_polynomial<double>(a, coeffs, x, y_base, mws);
    test::expect_near_rel(y_fb, y_base, rtol_for(static_cast<int>(terms)));
  }
}

TEST(Fbmpk, BtbAndSplitVariantsAgreeBitwise) {
  // Both variants perform the identical FP operations in identical
  // order; only the iterate storage differs, so results are bitwise
  // equal.
  const auto a = test::random_matrix(90, 8.0, true, 37);
  const auto x = test::random_vector(90, 38);
  const auto s = split_triangular(a);
  FbWorkspace<double> w1, w2;
  for (int k : {1, 2, 3, 4, 5, 6}) {
    AlignedVector<double> y1(90), y2(90);
    fbmpk_power<double>(s, x, k, y1, w1, FbVariant::kBtb);
    fbmpk_power<double>(s, x, k, y2, w2, FbVariant::kSplit);
    for (index_t i = 0; i < 90; ++i)
      ASSERT_EQ(y1[i], y2[i]) << "k=" << k << " i=" << i;
  }
}

TEST(Fbmpk, DiagonalOnlyMatrix) {
  // L and U empty: x_k[i] = d[i]^k x0[i].
  CooMatrix<double> coo(5, 5);
  for (index_t i = 0; i < 5; ++i) coo.add(i, i, 2.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto s = split_triangular(a);
  const AlignedVector<double> x{1, 2, 3, 4, 5};
  FbWorkspace<double> ws;
  AlignedVector<double> y(5);
  fbmpk_power<double>(s, x, 3, y, ws);
  for (index_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(y[i], 8.0 * x[i]);
}

TEST(Fbmpk, LowerTriangularOnlyMatrix) {
  // U empty exercises the empty-backward-rows path.
  CooMatrix<double> coo(4, 4);
  coo.add(1, 0, 1.0);
  coo.add(2, 1, 1.0);
  coo.add(3, 2, 1.0);
  for (index_t i = 0; i < 4; ++i) coo.add(i, i, 1.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto s = split_triangular(a);
  const AlignedVector<double> x{1, 0, 0, 0};
  FbWorkspace<double> ws;
  AlignedVector<double> y(4);
  fbmpk_power<double>(s, x, 2, y, ws);
  const auto ref = test::dense_power_reference(a, x, 2);
  test::expect_near_rel(y, ref, 1e-14);
}

TEST(Fbmpk, UpperTriangularOnlyMatrix) {
  CooMatrix<double> coo(4, 4);
  coo.add(0, 1, 1.0);
  coo.add(1, 2, 1.0);
  coo.add(2, 3, 1.0);
  for (index_t i = 0; i < 4; ++i) coo.add(i, i, 1.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto s = split_triangular(a);
  const AlignedVector<double> x{0, 0, 0, 1};
  FbWorkspace<double> ws;
  AlignedVector<double> y(4);
  fbmpk_power<double>(s, x, 3, y, ws);
  const auto ref = test::dense_power_reference(a, x, 3);
  test::expect_near_rel(y, ref, 1e-14);
}

TEST(Fbmpk, TinyMatrices) {
  for (index_t n : {1, 2, 3}) {
    const auto a = test::random_matrix(n, 2.0, true, 50 + n);
    const auto x = test::random_vector(n, 60 + n);
    const auto s = split_triangular(a);
    FbWorkspace<double> ws;
    for (int k : {1, 2, 3}) {
      AlignedVector<double> y(n);
      fbmpk_power<double>(s, x, k, y, ws);
      const auto ref = test::dense_power_reference(a, x, k);
      test::expect_near_rel(y, ref, 1e-10, "tiny");
    }
  }
}

TEST(Fbmpk, NegativeKThrows) {
  const auto a = test::random_matrix(10, 3.0, true, 70);
  const auto s = split_triangular(a);
  const auto x = test::random_vector(10, 71);
  FbWorkspace<double> ws;
  AlignedVector<double> y(10);
  EXPECT_THROW(fbmpk_power<double>(s, x, -1, y, ws), Error);
}

TEST(Fbmpk, EmitContractFiresExactlyOncePerPowerAndRow) {
  // The Emit protocol underpins power/power_all/polynomial: every
  // (p, i) pair in [1,k] x [0,n) must be emitted exactly once, for both
  // parities of k and both variants.
  const index_t n = 37;
  const auto a = test::random_matrix(n, 5.0, false, 91);
  const auto s = split_triangular(a);
  const auto x = test::random_vector(n, 92);
  for (int k : {1, 2, 5, 6}) {
    for (auto variant : {FbVariant::kBtb, FbVariant::kSplit}) {
      std::vector<int> count(static_cast<std::size_t>(k) * n, 0);
      FbWorkspace<double> ws;
      fbmpk_sweep(
          s, std::span<const double>(x), k, ws,
          [&](int p, index_t i, double) {
            ASSERT_GE(p, 1);
            ASSERT_LE(p, k);
            count[static_cast<std::size_t>(p - 1) * n + i] += 1;
          },
          variant);
      for (int c : count) EXPECT_EQ(c, 1) << "k=" << k;
    }
  }
}

TEST(Fbmpk, SuiteMatricesSmallScaleAgreeWithBaseline) {
  // End-to-end on miniature versions of every evaluation matrix.
  for (const auto& name : gen::suite_names()) {
    const auto m = gen::make_suite_matrix(name, 0.02);
    const index_t n = m.matrix.rows();
    const auto x = test::random_vector(n, 123);
    const auto s = split_triangular(m.matrix);
    FbWorkspace<double> fws;
    MpkWorkspace<double> mws;
    AlignedVector<double> y_fb(n), y_base(n);
    fbmpk_power<double>(s, x, 5, y_fb, fws);
    mpk_power<double>(m.matrix, x, 5, y_base, mws);
    test::expect_near_rel(y_fb, y_base, rtol_for(5), name.c_str());
  }
}

}  // namespace
}  // namespace fbmpk
