// Tests for plan serialization (offline preprocessing, paper §IV-C).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <sstream>

#include "core/plan.hpp"
#include "core/plan_io.hpp"
#include "support/checksum.hpp"
#include "gen/stencil.hpp"
#include "kernels/mpk_baseline.hpp"
#include "support/threading.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

void expect_plans_equivalent(MpkPlan& a, MpkPlan& b,
                             const CsrMatrix<double>& matrix, int k) {
  const index_t n = matrix.rows();
  const auto x = test::random_vector(n, 99);
  AlignedVector<double> ya(n), yb(n);
  a.power(x, k, ya);
  b.power(x, k, yb);
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(ya[i], yb[i]) << "row " << i;
}

TEST(PlanIo, RoundTripAbmcParallelPlan) {
  const auto a = gen::make_laplacian_3d(10, 10, 10);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);

  EXPECT_EQ(loaded.rows(), plan.rows());
  EXPECT_EQ(loaded.permutation(), plan.permutation());
  EXPECT_EQ(loaded.stats().num_colors, plan.stats().num_colors);
  EXPECT_EQ(loaded.split().lower, plan.split().lower);
  EXPECT_EQ(loaded.split().upper, plan.split().upper);
  expect_plans_equivalent(plan, loaded, a, 5);
}

TEST(PlanIo, RoundTripSerialPlan) {
  const auto a = test::random_matrix(120, 6.0, false, 3);
  PlanOptions opts;
  opts.reorder = false;
  opts.parallel = false;
  opts.variant = FbVariant::kSplit;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  EXPECT_EQ(loaded.options().variant, FbVariant::kSplit);
  EXPECT_FALSE(loaded.options().parallel);
  expect_plans_equivalent(plan, loaded, a, 4);
}

TEST(PlanIo, RoundTripLevelScheduledPlan) {
  const auto a = test::random_matrix(200, 7.0, true, 5);
  PlanOptions opts;
  opts.reorder = false;
  opts.scheduler = Scheduler::kLevels;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  EXPECT_EQ(loaded.stats().num_levels_forward,
            plan.stats().num_levels_forward);
  expect_plans_equivalent(plan, loaded, a, 6);
}

TEST(PlanIo, FileRoundTrip) {
  const auto a = gen::make_laplacian_2d(15, 15);
  auto plan = MpkPlan::build(a);
  const std::string path = ::testing::TempDir() + "/fbmpk_plan.bin";
  save_plan_file(plan, path);
  auto loaded = load_plan_file(path);
  expect_plans_equivalent(plan, loaded, a, 3);
}

TEST(PlanIo, RejectsGarbageAndTruncation) {
  std::stringstream garbage("this is not a plan");
  EXPECT_THROW(load_plan(garbage), Error);

  const auto a = gen::make_laplacian_2d(6, 6);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_plan(truncated), Error);

  // Flip a byte inside the payload: the CRC32 makes every flip a hard,
  // typed error — silent acceptance is no longer an allowed outcome
  // (test_fault_injection sweeps all positions; this spot-checks one).
  std::string corrupt = full;
  corrupt[full.size() - 9] = static_cast<char>(
      static_cast<unsigned char>(corrupt[full.size() - 9]) ^ 0xff);
  std::stringstream cbuf(corrupt);
  try {
    load_plan(cbuf);
    FAIL() << "corrupted payload byte was silently accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPlan);
  }
  EXPECT_THROW(load_plan_file("/nonexistent/plan.bin"), Error);
}

TEST(PlanIo, RejectsOldFormatVersionWithTypedError) {
  // A v1 header (raw-POD era) must fail with kVersionMismatch, not be
  // misparsed as framed sections.
  std::string v1("FBMPKPLN", 8);
  const std::uint32_t version = 1, width = 4;
  v1.append(reinterpret_cast<const char*>(&version), 4);
  v1.append(reinterpret_cast<const char*>(&width), 4);
  v1.append(128, '\0');
  std::stringstream buf(v1);
  try {
    load_plan(buf);
    FAIL() << "v1 stream accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kVersionMismatch);
  }
}

TEST(PlanIo, ChecksumCoversWholePayload) {
  // Same build twice -> identical bytes (the format is deterministic),
  // and the serialized stream round-trips the sanitize options too.
  const auto a = gen::make_laplacian_2d(7, 7);
  PlanOptions opts;
  opts.sanitize.policy = RepairPolicy::kWarnOnly;
  opts.sanitize.check_diagonal = true;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream b1, b2;
  save_plan(plan, b1);
  save_plan(plan, b2);
  EXPECT_EQ(b1.str(), b2.str());

  auto loaded = load_plan(b1);
  EXPECT_EQ(loaded.options().sanitize.policy, RepairPolicy::kWarnOnly);
  EXPECT_TRUE(loaded.options().sanitize.check_diagonal);
}

TEST(PlanIo, TryLoadReturnsExpectedInsteadOfThrowing) {
  const auto bad = try_load_plan_file("/nonexistent/plan.bin");
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.code(), ErrorCode::kIo);

  std::stringstream garbage("not a plan at all........");
  const auto corrupt = try_load_plan(garbage);
  ASSERT_FALSE(corrupt);
  EXPECT_EQ(corrupt.code(), ErrorCode::kCorruptPlan);

  const auto a = gen::make_laplacian_2d(6, 6);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = try_load_plan(buf);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded.value().rows(), 36);
}

// --- format v4: kernel options + PCKD packed-index section -----------------

TEST(PlanIo, RoundTripCompressedDispatchPlan) {
  const auto a = gen::make_laplacian_2d(20, 18);
  PlanOptions opts;
  opts.kernel_backend = KernelBackend::kGeneric;
  opts.index_compress = true;
  opts.prefetch_dist = 8;
  opts.autotune_oracle = false;  // non-default, must round-trip (v6)
  auto plan = MpkPlan::build(a, opts);
  ASSERT_GT(plan.stats().packed_index_bytes, 0u);

  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);

  EXPECT_EQ(loaded.options().kernel_backend, KernelBackend::kGeneric);
  EXPECT_TRUE(loaded.options().index_compress);
  EXPECT_EQ(loaded.options().prefetch_dist, 8);
  EXPECT_FALSE(loaded.options().autotune_oracle);
  EXPECT_EQ(loaded.resolved_backend(), KernelBackend::kGeneric);
  EXPECT_EQ(loaded.stats().packed_index_bytes,
            plan.stats().packed_index_bytes);
  EXPECT_EQ(loaded.packed_index().bytes_per_nnz(),
            plan.packed_index().bytes_per_nnz());
  expect_plans_equivalent(plan, loaded, a, 5);
}

TEST(PlanIo, RoundTripResolvesAutoBackendOnLoad) {
  const auto a = gen::make_laplacian_2d(9, 9);
  PlanOptions opts;
  opts.kernel_backend = KernelBackend::kAuto;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  // The stored option stays kAuto; the executing backend re-resolves on
  // the loading machine (here: the same one).
  EXPECT_EQ(loaded.options().kernel_backend, KernelBackend::kAuto);
  EXPECT_EQ(loaded.resolved_backend(), plan.resolved_backend());
  expect_plans_equivalent(plan, loaded, a, 4);
}

namespace {
// Byte offsets of the fixed header before the CRC'd payload.
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 4;
constexpr std::size_t kCrcOffset = 8 + 4 + 4 + 8;

// Re-stamp the header CRC after tampering payload bytes, so the load
// failure exercises semantic validation rather than the checksum.
void fix_crc(std::string& stream) {
  const std::uint32_t crc = crc32(stream.data() + kHeaderBytes,
                                  stream.size() - kHeaderBytes);
  std::memcpy(stream.data() + kCrcOffset, &crc, sizeof(crc));
}
}  // namespace

TEST(PlanIo, TamperedPackedSectionFailsDecodeCompare) {
  const auto a = gen::make_laplacian_2d(16, 16);
  PlanOptions opts;
  opts.index_compress = true;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  std::string stream = buf.str();

  // Locate the PCKD frame by its tag bytes (u32 little-endian -> the
  // byte string "DKCP"; VALP/TUNE follow it since v5 so it is no
  // longer last). Its final vector (upper.col32) is empty on this
  // banded matrix, so the byte 9 from the frame's end is the last u16
  // of upper.col16 — flip it and re-stamp the CRC. The framing and
  // checksum now pass; only the decode-compare can catch it.
  ASSERT_GT(stream.size(), 32u);
  const std::string tag = {'D', 'K', 'C', 'P'};
  const std::size_t pckd = stream.rfind(tag);
  ASSERT_NE(pckd, std::string::npos);
  std::uint64_t len = 0;
  std::memcpy(&len, stream.data() + pckd + 4, sizeof(len));
  const std::size_t pckd_end = pckd + 12 + static_cast<std::size_t>(len);
  ASSERT_LE(pckd_end, stream.size());
  stream[pckd_end - 9] = static_cast<char>(
      static_cast<unsigned char>(stream[pckd_end - 9]) ^ 0x01);
  fix_crc(stream);

  std::stringstream tampered(stream);
  try {
    load_plan(tampered);
    FAIL() << "tampered packed index was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPlan);
  }
}

TEST(PlanIo, PackedPayloadWithCompressOffIsCorrupt) {
  // A plan claiming index_compress=off must not smuggle in a packed
  // sidecar. Craft one by flipping the OPTS boolean of a compressed
  // plan's stream: the first payload byte that differs between the
  // compressed and uncompressed builds is exactly that flag.
  const auto a = gen::make_laplacian_2d(12, 12);
  PlanOptions on, off;
  on.index_compress = true;
  off.index_compress = false;
  auto plan_on = MpkPlan::build(a, on);
  auto plan_off = MpkPlan::build(a, off);
  std::stringstream bon, boff;
  save_plan(plan_on, bon);
  save_plan(plan_off, boff);
  std::string s_on = bon.str();
  const std::string s_off = boff.str();

  std::size_t flag = std::string::npos;
  for (std::size_t i = kHeaderBytes;
       i < std::min(s_on.size(), s_off.size()); ++i) {
    if (s_on[i] != s_off[i]) {
      flag = i;
      break;
    }
  }
  ASSERT_NE(flag, std::string::npos);
  ASSERT_EQ(s_on[flag], 1);  // the serialized boolean
  s_on[flag] = 0;
  fix_crc(s_on);

  std::stringstream tampered(s_on);
  try {
    load_plan(tampered);
    FAIL() << "packed payload with index_compress=off was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPlan);
  }
}

// ---------------------------------------------------------------------------
// Plan format v5: value sidecars (VALP) and the tuned config (TUNE).
// ---------------------------------------------------------------------------

TEST(PlanIo, RoundTripMixedPrecisionPlanBitwise) {
  const auto a = gen::make_laplacian_2d(14, 14);
  for (const ValuePrecision p :
       {ValuePrecision::kFp32, ValuePrecision::kSplit}) {
    PlanOptions opts;
    opts.index_compress = true;
    opts.value_precision = p;
    auto plan = MpkPlan::build(a, opts);
    ASSERT_GT(plan.stats().packed_value_bytes, 0u);

    std::stringstream buf;
    save_plan(plan, buf);
    auto loaded = load_plan(buf);
    EXPECT_EQ(loaded.options().value_precision, p);
    EXPECT_EQ(loaded.packed_values().precision, p);
    EXPECT_EQ(loaded.stats().packed_value_bytes,
              plan.stats().packed_value_bytes);
    EXPECT_EQ(loaded.packed_values().lossless(),
              plan.packed_values().lossless());
    expect_plans_equivalent(plan, loaded, a, 5);
  }
}

TEST(PlanIo, TamperedValueSectionFailsDecodeCompare) {
  const auto a = gen::make_laplacian_2d(16, 16);
  PlanOptions opts;
  opts.value_precision = ValuePrecision::kSplit;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  std::string stream = buf.str();

  // Locate the VALP frame ('VALP' as a little-endian u32 -> the byte
  // string "PLAV"). Its layout: u32 precision, then the lower
  // triangle's raw store — u8 precision, u8 lossless, u64 count,
  // empty f32 vec (u64 size 0), hi vec (u64 size + data). Flip the
  // first byte of lower.hi and re-stamp the CRC: framing and checksum
  // pass, only the decode-compare against the fp64 split can catch it.
  const std::string tag = {'P', 'L', 'A', 'V'};
  const std::size_t valp = stream.rfind(tag);
  ASSERT_NE(valp, std::string::npos);
  const std::size_t hi0 = valp + 12 + 4 + 1 + 1 + 8 + 8 + 8;
  ASSERT_LT(hi0, stream.size());
  stream[hi0] = static_cast<char>(
      static_cast<unsigned char>(stream[hi0]) ^ 0x01);
  fix_crc(stream);

  std::stringstream tampered(stream);
  try {
    load_plan(tampered);
    FAIL() << "tampered value sidecar was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPlan);
  }
}

TEST(PlanIo, ValueSidecarWithFp64PrecisionIsCorrupt) {
  // A plan claiming fp64 must not smuggle in value sidecars: flip the
  // OPTS precision word of a split plan's stream to fp64 and re-stamp
  // the CRC — the require-empty check must fire.
  const auto a = gen::make_laplacian_2d(12, 12);
  PlanOptions split_opts, plain_opts;
  split_opts.value_precision = ValuePrecision::kSplit;
  auto plan_split = MpkPlan::build(a, split_opts);
  auto plan_plain = MpkPlan::build(a, plain_opts);
  std::stringstream bs, bp;
  save_plan(plan_split, bs);
  save_plan(plan_plain, bp);
  std::string s_split = bs.str();
  const std::string s_plain = bp.str();

  // The first differing payload byte is the serialized precision enum.
  std::size_t pos = std::string::npos;
  for (std::size_t i = kHeaderBytes;
       i < std::min(s_split.size(), s_plain.size()); ++i) {
    if (s_split[i] != s_plain[i]) {
      pos = i;
      break;
    }
  }
  ASSERT_NE(pos, std::string::npos);
  ASSERT_EQ(s_split[pos], 2);  // ValuePrecision::kSplit as u32 LSB
  s_split[pos] = 0;            // claim fp64
  fix_crc(s_split);

  std::stringstream tampered(s_split);
  try {
    load_plan(tampered);
    FAIL() << "value sidecar with fp64 precision was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPlan);
  }
}

TEST(PlanIo, TamperedTunedSectionIsRejected) {
  const auto a = gen::make_laplacian_2d(10, 10);
  auto plan = MpkPlan::build(a);
  TunedConfig cfg;
  cfg.valid = true;
  cfg.backend = KernelBackend::kScalar;
  cfg.tuned_threads = 4;
  cfg.best_seconds = 1e-3;
  plan.set_tuned_config(cfg);
  std::stringstream buf;
  save_plan(plan, buf);
  std::string stream = buf.str();

  // 'TUNE' little-endian -> "ENUT"; after tag+length comes the valid
  // bool (u8) then the backend enum (u32). Stomp the enum out of range
  // and re-stamp the CRC.
  const std::string tag = {'E', 'N', 'U', 'T'};
  const std::size_t tune = stream.rfind(tag);
  ASSERT_NE(tune, std::string::npos);
  stream[tune + 12 + 1] = static_cast<char>(0xFF);
  fix_crc(stream);

  std::stringstream tampered(stream);
  try {
    load_plan(tampered);
    FAIL() << "out-of-range tuned backend was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPlan);
  }
}

TEST(PlanIo, TunedConfigRoundTripsAndRevalidatesStaleness) {
  const auto a = gen::make_laplacian_2d(12, 12);
  const auto threads = static_cast<index_t>(max_threads());

  // A config tuned on "this machine": survives the round trip, fresh.
  auto plan = MpkPlan::build(a);
  TunedConfig cfg;
  cfg.valid = true;
  cfg.backend = KernelBackend::kScalar;
  cfg.index_compress = true;
  cfg.value_precision = ValuePrecision::kFp32;
  cfg.tuned_threads = threads;
  cfg.best_seconds = 2.5e-4;
  cfg.oracle_used = true;
  cfg.oracle_predicted_bytes = 3.25e8;
  cfg.candidates_scored = 9;
  cfg.candidates_timed = 4;
  cfg.oracle_rank_of_winner = 2;
  plan.set_tuned_config(cfg);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  EXPECT_TRUE(loaded.tuned_config().valid);
  EXPECT_EQ(loaded.tuned_config().backend, cfg.backend);
  EXPECT_EQ(loaded.tuned_config().index_compress, cfg.index_compress);
  EXPECT_EQ(loaded.tuned_config().value_precision, cfg.value_precision);
  EXPECT_EQ(loaded.tuned_config().tuned_threads, threads);
  EXPECT_EQ(loaded.tuned_config().best_seconds, cfg.best_seconds);
  EXPECT_FALSE(loaded.tuned_config().stale);
  // v6 oracle provenance survives the round trip.
  EXPECT_TRUE(loaded.tuned_config().oracle_used);
  EXPECT_EQ(loaded.tuned_config().oracle_predicted_bytes,
            cfg.oracle_predicted_bytes);
  EXPECT_EQ(loaded.tuned_config().candidates_scored, cfg.candidates_scored);
  EXPECT_EQ(loaded.tuned_config().candidates_timed, cfg.candidates_timed);
  EXPECT_EQ(loaded.tuned_config().oracle_rank_of_winner,
            cfg.oracle_rank_of_winner);

  // A config tuned at a different thread count: loads, flagged stale.
  cfg.tuned_threads = threads + 7;
  plan.set_tuned_config(cfg);
  std::stringstream buf2;
  save_plan(plan, buf2);
  auto stale = load_plan(buf2);
  EXPECT_TRUE(stale.tuned_config().valid);
  EXPECT_TRUE(stale.tuned_config().stale);

  // A never-tuned plan round-trips as never-tuned.
  auto fresh = MpkPlan::build(a);
  std::stringstream buf3;
  save_plan(fresh, buf3);
  auto untuned = load_plan(buf3);
  EXPECT_FALSE(untuned.tuned_config().valid);
  EXPECT_FALSE(untuned.tuned_config().stale);
}

// ---------------------------------------------------------------------------
// Plan format v7: the level-blocked schedule (LVLS) and the scheduler
// provenance fields of TUNE.
// ---------------------------------------------------------------------------

TEST(PlanIo, RoundTripLevelEnginePlanWithSchedule) {
  const auto a = test::random_matrix(220, 7.0, false, 41);
  PlanOptions opts;
  opts.reorder = false;
  opts.scheduler = Scheduler::kLevels;
  opts.sweep.sync = SweepSync::kPointToPoint;
  auto plan = MpkPlan::build(a, opts);
  ASSERT_FALSE(plan.level_sweep_schedule().empty());

  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  EXPECT_EQ(loaded.options().scheduler, Scheduler::kLevels);
  EXPECT_EQ(loaded.options().sweep.sync, SweepSync::kPointToPoint);
  ASSERT_FALSE(loaded.level_sweep_schedule().empty());
  EXPECT_EQ(loaded.level_sweep_schedule().num_threads,
            plan.level_sweep_schedule().num_threads);
  EXPECT_EQ(loaded.level_sweep_schedule().fwd.num_stages,
            plan.level_sweep_schedule().fwd.num_stages);
  EXPECT_EQ(loaded.level_sweep_schedule().fwd.part_rows,
            plan.level_sweep_schedule().fwd.part_rows);
  expect_plans_equivalent(plan, loaded, a, 5);
}

TEST(PlanIo, MismatchedThreadCountRebuildsLevelSchedule) {
  const auto a = test::random_matrix(200, 6.0, true, 43);
  const int dflt = max_threads();
  PlanOptions opts;
  opts.reorder = false;
  opts.scheduler = Scheduler::kLevels;
  opts.sweep.sync = SweepSync::kPointToPoint;
  // threads = 0: the schedule follows the runtime default. Build the
  // plan "on a 2-core box", load it "on a 3-core box".
  set_threads(2);
  auto plan = MpkPlan::build(a, opts);
  ASSERT_EQ(plan.level_sweep_schedule().num_threads, 2);
  std::stringstream buf;
  save_plan(plan, buf);

  set_threads(3);
  auto loaded = load_plan(buf);
  set_threads(dflt);
  // The loader rebuilds the schedule for the runtime default, exactly
  // like the ABMC SWEP section.
  EXPECT_EQ(loaded.level_sweep_schedule().num_threads, 3);
  expect_plans_equivalent(plan, loaded, a, 5);
}

TEST(PlanIo, TamperedLevelScheduleFailsValidation) {
  const auto a = test::random_matrix(180, 7.0, false, 47);
  PlanOptions opts;
  opts.reorder = false;
  opts.scheduler = Scheduler::kLevels;
  opts.sweep.sync = SweepSync::kPointToPoint;
  auto plan = MpkPlan::build(a, opts);
  const auto& ls = plan.level_sweep_schedule();
  ASSERT_FALSE(ls.empty());
  std::stringstream buf;
  save_plan(plan, buf);
  std::string stream = buf.str();

  // Locate the LVLS frame ('LVLS' as a little-endian u32 -> the byte
  // string "SLVL") and flip the low bit of the first fwd.part_rows
  // entry. The section starts with the two LevelSchedules (num_levels
  // pod + level_ptr/rows vecs each) before the v7 blocked-schedule
  // extension. The shape checks still pass — the partition merely
  // names a duplicate row — so only validate_level_sweep_schedule can
  // catch it.
  const auto sched_bytes = [](const LevelSchedule& s) {
    return 4 + (8 + 4 * s.level_ptr.size()) + (8 + 4 * s.rows.size());
  };
  const std::string tag = {'S', 'L', 'V', 'L'};
  const std::size_t lvls = stream.rfind(tag);
  ASSERT_NE(lvls, std::string::npos);
  const std::size_t first_part_row =
      lvls + 12 + sched_bytes(plan.levels().forward) +
      sched_bytes(plan.levels().backward) + 4 /*num_threads*/ +
      4 /*fwd.num_stages*/ + (8 + 4 * ls.fwd.stage_level_ptr.size()) +
      (8 + 4 * ls.fwd.part_ptr.size()) + 8 /*part_rows size*/;
  ASSERT_LT(first_part_row, stream.size());
  stream[first_part_row] = static_cast<char>(
      static_cast<unsigned char>(stream[first_part_row]) ^ 0x01);
  fix_crc(stream);

  std::stringstream tampered(stream);
  try {
    load_plan(tampered);
    FAIL() << "tampered level schedule was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPlan);
  }
}

TEST(PlanIo, TruncatedLevelSectionIsRejected) {
  const auto a = test::random_matrix(160, 6.0, true, 53);
  PlanOptions opts;
  opts.reorder = false;
  opts.scheduler = Scheduler::kLevels;
  opts.sweep.sync = SweepSync::kPointToPoint;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  const std::string full = buf.str();
  const std::size_t lvls = full.rfind(std::string{'S', 'L', 'V', 'L'});
  ASSERT_NE(lvls, std::string::npos);

  // Cut the stream in the middle of the LVLS payload.
  std::stringstream truncated(full.substr(0, lvls + 24));
  try {
    load_plan(truncated);
    FAIL() << "truncated level section was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPlan);
  }
}

TEST(PlanIo, LevelScheduleOnNonLevelPlanIsCorrupt) {
  // A stream whose LVLS section is non-empty while the plan is not a
  // parallel level plan must be rejected: craft it by flipping the
  // OPTS scheduler enum of a levels plan to kAbmc. (The reorder flag
  // also differs between the two builds, so locate the scheduler word
  // by diffing against a second levels build with ABMC claimed via the
  // enum alone.)
  const auto a = test::random_matrix(150, 6.0, true, 59);
  PlanOptions lv;
  lv.reorder = true;  // keep every other OPTS byte identical to ABMC
  lv.scheduler = Scheduler::kLevels;
  lv.sweep.sync = SweepSync::kPointToPoint;
  auto plan_lv = MpkPlan::build(a, lv);
  ASSERT_FALSE(plan_lv.level_sweep_schedule().empty());
  PlanOptions ab = lv;
  ab.scheduler = Scheduler::kAbmc;
  auto plan_ab = MpkPlan::build(a, ab);
  std::stringstream bl, ba;
  save_plan(plan_lv, bl);
  save_plan(plan_ab, ba);
  std::string s_lv = bl.str();
  const std::string s_ab = ba.str();

  // The first differing payload byte is the serialized scheduler enum.
  std::size_t pos = std::string::npos;
  for (std::size_t i = kHeaderBytes;
       i < std::min(s_lv.size(), s_ab.size()); ++i) {
    if (s_lv[i] != s_ab[i]) {
      pos = i;
      break;
    }
  }
  ASSERT_NE(pos, std::string::npos);
  ASSERT_EQ(s_lv[pos], 1);  // Scheduler::kLevels as u32 LSB
  s_lv[pos] = 0;            // claim kAbmc; LVLS payload stays
  fix_crc(s_lv);

  std::stringstream tampered(s_lv);
  try {
    load_plan(tampered);
    FAIL() << "level schedule on an ABMC plan was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPlan);
  }
}

TEST(PlanIo, SchedulerProvenanceRoundTrips) {
  const auto a = gen::make_laplacian_2d(12, 12);
  auto plan = MpkPlan::build(a);
  TunedConfig cfg;
  cfg.valid = true;
  cfg.backend = KernelBackend::kScalar;
  cfg.tuned_threads = static_cast<index_t>(max_threads());
  cfg.best_seconds = 1e-3;
  cfg.scheduler = Scheduler::kLevels;
  cfg.scheduler_measured = true;
  cfg.scheduler_alt_seconds = 2e-3;
  plan.set_tuned_config(cfg);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  EXPECT_EQ(loaded.tuned_config().scheduler, Scheduler::kLevels);
  EXPECT_TRUE(loaded.tuned_config().scheduler_measured);
  EXPECT_EQ(loaded.tuned_config().scheduler_alt_seconds, 2e-3);
}

// ---------------------------------------------------------------------------
// Backward compatibility: committed v4 fixtures (written by the PR 3
// build, before VALP/TUNE existed) must still load, defaulting to fp64
// values and a never-tuned config, and reproduce today's numerics.
// ---------------------------------------------------------------------------

TEST(PlanIo, V4GoldenPlansStillLoad) {
  struct Fixture {
    const char* file;
    bool compressed;
  };
  for (const Fixture f : {Fixture{"plan_v4.bin", false},
                          Fixture{"plan_v4_packed.bin", true}}) {
    SCOPED_TRACE(f.file);
    auto loaded = load_plan_file(std::string(FBMPK_TEST_GOLDEN_DIR) + "/" +
                                 f.file);
    EXPECT_EQ(loaded.rows(), 64);  // laplacian_2d(8, 8)
    EXPECT_EQ(loaded.options().value_precision, ValuePrecision::kFp64);
    EXPECT_EQ(loaded.options().index_compress, f.compressed);
    EXPECT_EQ(loaded.stats().packed_value_bytes, 0u);
    EXPECT_FALSE(loaded.tuned_config().valid);
    EXPECT_TRUE(loaded.options().autotune_oracle);  // v6 default
    EXPECT_FALSE(loaded.tuned_config().oracle_used);

    // The v4 plan must compute exactly what a fresh build computes.
    const auto a = gen::make_laplacian_2d(8, 8);
    PlanOptions opts;
    opts.index_compress = f.compressed;
    auto fresh = MpkPlan::build(a, opts);
    expect_plans_equivalent(fresh, loaded, a, 5);
  }
}

TEST(PlanIo, V6GoldenLevelsPlanStillLoads) {
  // Committed by the pre-v7 build: a parallel level-scheduled plan
  // (reorder off, barrier sync) over test::random_matrix(200, 7.0,
  // symmetric, seed 5). v6 streams carry no LVLS blocked-schedule
  // extension and no TUNE scheduler provenance; both must default.
  auto loaded = load_plan_file(std::string(FBMPK_TEST_GOLDEN_DIR) +
                               "/plan_v6.bin");
  EXPECT_EQ(loaded.rows(), 200);
  EXPECT_EQ(loaded.options().scheduler, Scheduler::kLevels);
  EXPECT_TRUE(loaded.options().parallel);
  EXPECT_FALSE(loaded.options().reorder);
  EXPECT_GT(loaded.stats().num_levels_forward, 1);
  EXPECT_FALSE(loaded.tuned_config().valid);
  EXPECT_EQ(loaded.tuned_config().scheduler, Scheduler::kAbmc);
  EXPECT_FALSE(loaded.tuned_config().scheduler_measured);
  // Barrier sync: the blocked schedule stays absent even after the
  // load-time upgrade (it is a point-to-point structure).
  EXPECT_TRUE(loaded.level_sweep_schedule().empty());

  // The v6 plan must compute exactly what a fresh v7 build computes.
  const auto a = test::random_matrix(200, 7.0, true, 5);
  PlanOptions opts;
  opts.reorder = false;
  opts.scheduler = Scheduler::kLevels;
  auto fresh = MpkPlan::build(a, opts);
  expect_plans_equivalent(fresh, loaded, a, 5);

  // And the upgraded engine path agrees bitwise too: a fresh
  // point-to-point build over the same matrix runs the same per-row
  // kernels the v6 barrier plan does.
  PlanOptions p2p = opts;
  p2p.sweep.sync = SweepSync::kPointToPoint;
  auto engine = MpkPlan::build(a, p2p);
  expect_plans_equivalent(engine, loaded, a, 5);
}

TEST(PlanIo, LoadedPlanMatchesBaselineNumerics) {
  const auto a = test::random_matrix(150, 8.0, true, 7);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);

  const auto x = test::random_vector(150, 8);
  AlignedVector<double> y(150), ref(150);
  loaded.power(x, 5, y);
  MpkWorkspace<double> ws;
  mpk_power<double>(a, x, 5, ref, ws);
  test::expect_near_rel(y, ref, 1e-8);
}

}  // namespace
}  // namespace fbmpk
