// Tests for plan serialization (offline preprocessing, paper §IV-C).
#include <gtest/gtest.h>

#include <sstream>

#include "core/plan.hpp"
#include "core/plan_io.hpp"
#include "gen/stencil.hpp"
#include "kernels/mpk_baseline.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

void expect_plans_equivalent(MpkPlan& a, MpkPlan& b,
                             const CsrMatrix<double>& matrix, int k) {
  const index_t n = matrix.rows();
  const auto x = test::random_vector(n, 99);
  AlignedVector<double> ya(n), yb(n);
  a.power(x, k, ya);
  b.power(x, k, yb);
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(ya[i], yb[i]) << "row " << i;
}

TEST(PlanIo, RoundTripAbmcParallelPlan) {
  const auto a = gen::make_laplacian_3d(10, 10, 10);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);

  EXPECT_EQ(loaded.rows(), plan.rows());
  EXPECT_EQ(loaded.permutation(), plan.permutation());
  EXPECT_EQ(loaded.stats().num_colors, plan.stats().num_colors);
  EXPECT_EQ(loaded.split().lower, plan.split().lower);
  EXPECT_EQ(loaded.split().upper, plan.split().upper);
  expect_plans_equivalent(plan, loaded, a, 5);
}

TEST(PlanIo, RoundTripSerialPlan) {
  const auto a = test::random_matrix(120, 6.0, false, 3);
  PlanOptions opts;
  opts.reorder = false;
  opts.parallel = false;
  opts.variant = FbVariant::kSplit;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  EXPECT_EQ(loaded.options().variant, FbVariant::kSplit);
  EXPECT_FALSE(loaded.options().parallel);
  expect_plans_equivalent(plan, loaded, a, 4);
}

TEST(PlanIo, RoundTripLevelScheduledPlan) {
  const auto a = test::random_matrix(200, 7.0, true, 5);
  PlanOptions opts;
  opts.reorder = false;
  opts.scheduler = Scheduler::kLevels;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  EXPECT_EQ(loaded.stats().num_levels_forward,
            plan.stats().num_levels_forward);
  expect_plans_equivalent(plan, loaded, a, 6);
}

TEST(PlanIo, FileRoundTrip) {
  const auto a = gen::make_laplacian_2d(15, 15);
  auto plan = MpkPlan::build(a);
  const std::string path = ::testing::TempDir() + "/fbmpk_plan.bin";
  save_plan_file(plan, path);
  auto loaded = load_plan_file(path);
  expect_plans_equivalent(plan, loaded, a, 3);
}

TEST(PlanIo, RejectsGarbageAndTruncation) {
  std::stringstream garbage("this is not a plan");
  EXPECT_THROW(load_plan(garbage), Error);

  const auto a = gen::make_laplacian_2d(6, 6);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_plan(truncated), Error);

  // Flip a byte inside the CSR payload: structural validation catches it
  // or the stream fails — either way an Error, never UB.
  std::string corrupt = full;
  corrupt[full.size() - 9] = static_cast<char>(0xff);
  std::stringstream cbuf(corrupt);
  EXPECT_NO_THROW({
    try {
      auto p = load_plan(cbuf);
      (void)p;
    } catch (const Error&) {
      // acceptable outcome
    }
  });
  EXPECT_THROW(load_plan_file("/nonexistent/plan.bin"), Error);
}

TEST(PlanIo, LoadedPlanMatchesBaselineNumerics) {
  const auto a = test::random_matrix(150, 8.0, true, 7);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);

  const auto x = test::random_vector(150, 8);
  AlignedVector<double> y(150), ref(150);
  loaded.power(x, 5, y);
  MpkWorkspace<double> ws;
  mpk_power<double>(a, x, 5, ref, ws);
  test::expect_near_rel(y, ref, 1e-8);
}

}  // namespace
}  // namespace fbmpk
