// Tests for plan serialization (offline preprocessing, paper §IV-C).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "core/plan.hpp"
#include "core/plan_io.hpp"
#include "gen/stencil.hpp"
#include "kernels/mpk_baseline.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

void expect_plans_equivalent(MpkPlan& a, MpkPlan& b,
                             const CsrMatrix<double>& matrix, int k) {
  const index_t n = matrix.rows();
  const auto x = test::random_vector(n, 99);
  AlignedVector<double> ya(n), yb(n);
  a.power(x, k, ya);
  b.power(x, k, yb);
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(ya[i], yb[i]) << "row " << i;
}

TEST(PlanIo, RoundTripAbmcParallelPlan) {
  const auto a = gen::make_laplacian_3d(10, 10, 10);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);

  EXPECT_EQ(loaded.rows(), plan.rows());
  EXPECT_EQ(loaded.permutation(), plan.permutation());
  EXPECT_EQ(loaded.stats().num_colors, plan.stats().num_colors);
  EXPECT_EQ(loaded.split().lower, plan.split().lower);
  EXPECT_EQ(loaded.split().upper, plan.split().upper);
  expect_plans_equivalent(plan, loaded, a, 5);
}

TEST(PlanIo, RoundTripSerialPlan) {
  const auto a = test::random_matrix(120, 6.0, false, 3);
  PlanOptions opts;
  opts.reorder = false;
  opts.parallel = false;
  opts.variant = FbVariant::kSplit;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  EXPECT_EQ(loaded.options().variant, FbVariant::kSplit);
  EXPECT_FALSE(loaded.options().parallel);
  expect_plans_equivalent(plan, loaded, a, 4);
}

TEST(PlanIo, RoundTripLevelScheduledPlan) {
  const auto a = test::random_matrix(200, 7.0, true, 5);
  PlanOptions opts;
  opts.reorder = false;
  opts.scheduler = Scheduler::kLevels;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  EXPECT_EQ(loaded.stats().num_levels_forward,
            plan.stats().num_levels_forward);
  expect_plans_equivalent(plan, loaded, a, 6);
}

TEST(PlanIo, FileRoundTrip) {
  const auto a = gen::make_laplacian_2d(15, 15);
  auto plan = MpkPlan::build(a);
  const std::string path = ::testing::TempDir() + "/fbmpk_plan.bin";
  save_plan_file(plan, path);
  auto loaded = load_plan_file(path);
  expect_plans_equivalent(plan, loaded, a, 3);
}

TEST(PlanIo, RejectsGarbageAndTruncation) {
  std::stringstream garbage("this is not a plan");
  EXPECT_THROW(load_plan(garbage), Error);

  const auto a = gen::make_laplacian_2d(6, 6);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_plan(truncated), Error);

  // Flip a byte inside the payload: the CRC32 makes every flip a hard,
  // typed error — silent acceptance is no longer an allowed outcome
  // (test_fault_injection sweeps all positions; this spot-checks one).
  std::string corrupt = full;
  corrupt[full.size() - 9] = static_cast<char>(
      static_cast<unsigned char>(corrupt[full.size() - 9]) ^ 0xff);
  std::stringstream cbuf(corrupt);
  try {
    load_plan(cbuf);
    FAIL() << "corrupted payload byte was silently accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPlan);
  }
  EXPECT_THROW(load_plan_file("/nonexistent/plan.bin"), Error);
}

TEST(PlanIo, RejectsOldFormatVersionWithTypedError) {
  // A v1 header (raw-POD era) must fail with kVersionMismatch, not be
  // misparsed as framed sections.
  std::string v1("FBMPKPLN", 8);
  const std::uint32_t version = 1, width = 4;
  v1.append(reinterpret_cast<const char*>(&version), 4);
  v1.append(reinterpret_cast<const char*>(&width), 4);
  v1.append(128, '\0');
  std::stringstream buf(v1);
  try {
    load_plan(buf);
    FAIL() << "v1 stream accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kVersionMismatch);
  }
}

TEST(PlanIo, ChecksumCoversWholePayload) {
  // Same build twice -> identical bytes (the format is deterministic),
  // and the serialized stream round-trips the sanitize options too.
  const auto a = gen::make_laplacian_2d(7, 7);
  PlanOptions opts;
  opts.sanitize.policy = RepairPolicy::kWarnOnly;
  opts.sanitize.check_diagonal = true;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream b1, b2;
  save_plan(plan, b1);
  save_plan(plan, b2);
  EXPECT_EQ(b1.str(), b2.str());

  auto loaded = load_plan(b1);
  EXPECT_EQ(loaded.options().sanitize.policy, RepairPolicy::kWarnOnly);
  EXPECT_TRUE(loaded.options().sanitize.check_diagonal);
}

TEST(PlanIo, TryLoadReturnsExpectedInsteadOfThrowing) {
  const auto bad = try_load_plan_file("/nonexistent/plan.bin");
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.code(), ErrorCode::kIo);

  std::stringstream garbage("not a plan at all........");
  const auto corrupt = try_load_plan(garbage);
  ASSERT_FALSE(corrupt);
  EXPECT_EQ(corrupt.code(), ErrorCode::kCorruptPlan);

  const auto a = gen::make_laplacian_2d(6, 6);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = try_load_plan(buf);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded.value().rows(), 36);
}

TEST(PlanIo, LoadedPlanMatchesBaselineNumerics) {
  const auto a = test::random_matrix(150, 8.0, true, 7);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);

  const auto x = test::random_vector(150, 8);
  AlignedVector<double> y(150), ref(150);
  loaded.power(x, 5, y);
  MpkWorkspace<double> ws;
  mpk_power<double>(a, x, 5, ref, ws);
  test::expect_near_rel(y, ref, 1e-8);
}

}  // namespace
}  // namespace fbmpk
