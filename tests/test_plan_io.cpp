// Tests for plan serialization (offline preprocessing, paper §IV-C).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <sstream>

#include "core/plan.hpp"
#include "core/plan_io.hpp"
#include "support/checksum.hpp"
#include "gen/stencil.hpp"
#include "kernels/mpk_baseline.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

void expect_plans_equivalent(MpkPlan& a, MpkPlan& b,
                             const CsrMatrix<double>& matrix, int k) {
  const index_t n = matrix.rows();
  const auto x = test::random_vector(n, 99);
  AlignedVector<double> ya(n), yb(n);
  a.power(x, k, ya);
  b.power(x, k, yb);
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(ya[i], yb[i]) << "row " << i;
}

TEST(PlanIo, RoundTripAbmcParallelPlan) {
  const auto a = gen::make_laplacian_3d(10, 10, 10);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);

  EXPECT_EQ(loaded.rows(), plan.rows());
  EXPECT_EQ(loaded.permutation(), plan.permutation());
  EXPECT_EQ(loaded.stats().num_colors, plan.stats().num_colors);
  EXPECT_EQ(loaded.split().lower, plan.split().lower);
  EXPECT_EQ(loaded.split().upper, plan.split().upper);
  expect_plans_equivalent(plan, loaded, a, 5);
}

TEST(PlanIo, RoundTripSerialPlan) {
  const auto a = test::random_matrix(120, 6.0, false, 3);
  PlanOptions opts;
  opts.reorder = false;
  opts.parallel = false;
  opts.variant = FbVariant::kSplit;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  EXPECT_EQ(loaded.options().variant, FbVariant::kSplit);
  EXPECT_FALSE(loaded.options().parallel);
  expect_plans_equivalent(plan, loaded, a, 4);
}

TEST(PlanIo, RoundTripLevelScheduledPlan) {
  const auto a = test::random_matrix(200, 7.0, true, 5);
  PlanOptions opts;
  opts.reorder = false;
  opts.scheduler = Scheduler::kLevels;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  EXPECT_EQ(loaded.stats().num_levels_forward,
            plan.stats().num_levels_forward);
  expect_plans_equivalent(plan, loaded, a, 6);
}

TEST(PlanIo, FileRoundTrip) {
  const auto a = gen::make_laplacian_2d(15, 15);
  auto plan = MpkPlan::build(a);
  const std::string path = ::testing::TempDir() + "/fbmpk_plan.bin";
  save_plan_file(plan, path);
  auto loaded = load_plan_file(path);
  expect_plans_equivalent(plan, loaded, a, 3);
}

TEST(PlanIo, RejectsGarbageAndTruncation) {
  std::stringstream garbage("this is not a plan");
  EXPECT_THROW(load_plan(garbage), Error);

  const auto a = gen::make_laplacian_2d(6, 6);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_plan(truncated), Error);

  // Flip a byte inside the payload: the CRC32 makes every flip a hard,
  // typed error — silent acceptance is no longer an allowed outcome
  // (test_fault_injection sweeps all positions; this spot-checks one).
  std::string corrupt = full;
  corrupt[full.size() - 9] = static_cast<char>(
      static_cast<unsigned char>(corrupt[full.size() - 9]) ^ 0xff);
  std::stringstream cbuf(corrupt);
  try {
    load_plan(cbuf);
    FAIL() << "corrupted payload byte was silently accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPlan);
  }
  EXPECT_THROW(load_plan_file("/nonexistent/plan.bin"), Error);
}

TEST(PlanIo, RejectsOldFormatVersionWithTypedError) {
  // A v1 header (raw-POD era) must fail with kVersionMismatch, not be
  // misparsed as framed sections.
  std::string v1("FBMPKPLN", 8);
  const std::uint32_t version = 1, width = 4;
  v1.append(reinterpret_cast<const char*>(&version), 4);
  v1.append(reinterpret_cast<const char*>(&width), 4);
  v1.append(128, '\0');
  std::stringstream buf(v1);
  try {
    load_plan(buf);
    FAIL() << "v1 stream accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kVersionMismatch);
  }
}

TEST(PlanIo, ChecksumCoversWholePayload) {
  // Same build twice -> identical bytes (the format is deterministic),
  // and the serialized stream round-trips the sanitize options too.
  const auto a = gen::make_laplacian_2d(7, 7);
  PlanOptions opts;
  opts.sanitize.policy = RepairPolicy::kWarnOnly;
  opts.sanitize.check_diagonal = true;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream b1, b2;
  save_plan(plan, b1);
  save_plan(plan, b2);
  EXPECT_EQ(b1.str(), b2.str());

  auto loaded = load_plan(b1);
  EXPECT_EQ(loaded.options().sanitize.policy, RepairPolicy::kWarnOnly);
  EXPECT_TRUE(loaded.options().sanitize.check_diagonal);
}

TEST(PlanIo, TryLoadReturnsExpectedInsteadOfThrowing) {
  const auto bad = try_load_plan_file("/nonexistent/plan.bin");
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.code(), ErrorCode::kIo);

  std::stringstream garbage("not a plan at all........");
  const auto corrupt = try_load_plan(garbage);
  ASSERT_FALSE(corrupt);
  EXPECT_EQ(corrupt.code(), ErrorCode::kCorruptPlan);

  const auto a = gen::make_laplacian_2d(6, 6);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = try_load_plan(buf);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded.value().rows(), 36);
}

// --- format v4: kernel options + PCKD packed-index section -----------------

TEST(PlanIo, RoundTripCompressedDispatchPlan) {
  const auto a = gen::make_laplacian_2d(20, 18);
  PlanOptions opts;
  opts.kernel_backend = KernelBackend::kGeneric;
  opts.index_compress = true;
  opts.prefetch_dist = 8;
  auto plan = MpkPlan::build(a, opts);
  ASSERT_GT(plan.stats().packed_index_bytes, 0u);

  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);

  EXPECT_EQ(loaded.options().kernel_backend, KernelBackend::kGeneric);
  EXPECT_TRUE(loaded.options().index_compress);
  EXPECT_EQ(loaded.options().prefetch_dist, 8);
  EXPECT_EQ(loaded.resolved_backend(), KernelBackend::kGeneric);
  EXPECT_EQ(loaded.stats().packed_index_bytes,
            plan.stats().packed_index_bytes);
  EXPECT_EQ(loaded.packed_index().bytes_per_nnz(),
            plan.packed_index().bytes_per_nnz());
  expect_plans_equivalent(plan, loaded, a, 5);
}

TEST(PlanIo, RoundTripResolvesAutoBackendOnLoad) {
  const auto a = gen::make_laplacian_2d(9, 9);
  PlanOptions opts;
  opts.kernel_backend = KernelBackend::kAuto;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);
  // The stored option stays kAuto; the executing backend re-resolves on
  // the loading machine (here: the same one).
  EXPECT_EQ(loaded.options().kernel_backend, KernelBackend::kAuto);
  EXPECT_EQ(loaded.resolved_backend(), plan.resolved_backend());
  expect_plans_equivalent(plan, loaded, a, 4);
}

namespace {
// Byte offsets of the fixed header before the CRC'd payload.
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 4;
constexpr std::size_t kCrcOffset = 8 + 4 + 4 + 8;

// Re-stamp the header CRC after tampering payload bytes, so the load
// failure exercises semantic validation rather than the checksum.
void fix_crc(std::string& stream) {
  const std::uint32_t crc = crc32(stream.data() + kHeaderBytes,
                                  stream.size() - kHeaderBytes);
  std::memcpy(stream.data() + kCrcOffset, &crc, sizeof(crc));
}
}  // namespace

TEST(PlanIo, TamperedPackedSectionFailsDecodeCompare) {
  const auto a = gen::make_laplacian_2d(16, 16);
  PlanOptions opts;
  opts.index_compress = true;
  auto plan = MpkPlan::build(a, opts);
  std::stringstream buf;
  save_plan(plan, buf);
  std::string stream = buf.str();

  // PCKD is the last section and its final vector (upper.col32) is
  // empty on this banded matrix, so the byte 9 from the end is the last
  // u16 of upper.col16 — flip it and re-stamp the CRC. The framing and
  // checksum now pass; only the decode-compare can catch it.
  ASSERT_GT(stream.size(), 32u);
  stream[stream.size() - 9] = static_cast<char>(
      static_cast<unsigned char>(stream[stream.size() - 9]) ^ 0x01);
  fix_crc(stream);

  std::stringstream tampered(stream);
  try {
    load_plan(tampered);
    FAIL() << "tampered packed index was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPlan);
  }
}

TEST(PlanIo, PackedPayloadWithCompressOffIsCorrupt) {
  // A plan claiming index_compress=off must not smuggle in a packed
  // sidecar. Craft one by flipping the OPTS boolean of a compressed
  // plan's stream: the first payload byte that differs between the
  // compressed and uncompressed builds is exactly that flag.
  const auto a = gen::make_laplacian_2d(12, 12);
  PlanOptions on, off;
  on.index_compress = true;
  off.index_compress = false;
  auto plan_on = MpkPlan::build(a, on);
  auto plan_off = MpkPlan::build(a, off);
  std::stringstream bon, boff;
  save_plan(plan_on, bon);
  save_plan(plan_off, boff);
  std::string s_on = bon.str();
  const std::string s_off = boff.str();

  std::size_t flag = std::string::npos;
  for (std::size_t i = kHeaderBytes;
       i < std::min(s_on.size(), s_off.size()); ++i) {
    if (s_on[i] != s_off[i]) {
      flag = i;
      break;
    }
  }
  ASSERT_NE(flag, std::string::npos);
  ASSERT_EQ(s_on[flag], 1);  // the serialized boolean
  s_on[flag] = 0;
  fix_crc(s_on);

  std::stringstream tampered(s_on);
  try {
    load_plan(tampered);
    FAIL() << "packed payload with index_compress=off was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPlan);
  }
}

TEST(PlanIo, LoadedPlanMatchesBaselineNumerics) {
  const auto a = test::random_matrix(150, 8.0, true, 7);
  auto plan = MpkPlan::build(a);
  std::stringstream buf;
  save_plan(plan, buf);
  auto loaded = load_plan(buf);

  const auto x = test::random_vector(150, 8);
  AlignedVector<double> y(150), ref(150);
  loaded.power(x, 5, y);
  MpkWorkspace<double> ws;
  mpk_power<double>(a, x, 5, ref, ws);
  test::expect_near_rel(y, ref, 1e-8);
}

}  // namespace
}  // namespace fbmpk
