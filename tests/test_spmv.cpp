// Unit tests for SpMV kernels: all execution flavors against a dense
// reference and against each other.
#include <gtest/gtest.h>

#include "gen/stencil.hpp"
#include "kernels/spmv.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

TEST(Spmv, MatchesDenseReference) {
  const auto a = test::random_matrix(100, 7.0, false, 3);
  const auto x = test::random_vector(100, 4);
  AlignedVector<double> y(100);
  spmv<double>(a, x, y, SpmvExec::kSerial);
  const auto ref = test::dense_power_reference(a, x, 1);
  test::expect_near_rel(y, ref, 1e-12);
}

TEST(Spmv, AllVariantsAgree) {
  const auto a = test::random_matrix(500, 9.0, true, 5);
  const auto x = test::random_vector(500, 6);
  AlignedVector<double> ys(500), yu(500), yp(500);
  spmv<double>(a, x, ys, SpmvExec::kSerial);
  spmv<double>(a, x, yu, SpmvExec::kUnrolled);
  spmv<double>(a, x, yp, SpmvExec::kParallel);
  test::expect_near_rel(yu, ys, 1e-13, "unrolled vs serial");
  test::expect_near_rel(yp, ys, 1e-13, "parallel vs serial");
}

TEST(Spmv, EmptyRowsProduceZero) {
  CooMatrix<double> coo(4, 4);
  coo.add(0, 0, 2.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  const AlignedVector<double> x{1.0, 1.0, 1.0, 1.0};
  AlignedVector<double> y(4, -1.0);
  spmv<double>(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[3], 0.0);
}

TEST(Spmv, RectangularMatrix) {
  CooMatrix<double> coo(2, 3);
  coo.add(0, 2, 4.0);
  coo.add(1, 0, 3.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  const AlignedVector<double> x{1.0, 2.0, 3.0};
  AlignedVector<double> y(2);
  spmv<double>(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(Spmv, SizeMismatchThrows) {
  const auto a = test::random_matrix(10, 3.0, false, 1);
  AlignedVector<double> x(9), y(10);
  EXPECT_THROW(spmv<double>(a, x, y), Error);
  AlignedVector<double> x2(10), y2(11);
  EXPECT_THROW(spmv<double>(a, x2, y2), Error);
}

TEST(Spmv, UnrolledHandlesAllRowLengthResidues) {
  // Rows of length 0..7 exercise every tail case of the 4-way unroll.
  CooMatrix<double> coo(8, 8);
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < i; ++j) coo.add(i, j, 1.0 + j);
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto x = test::random_vector(8, 9);
  AlignedVector<double> ys(8), yu(8);
  spmv<double>(a, x, ys, SpmvExec::kSerial);
  spmv<double>(a, x, yu, SpmvExec::kUnrolled);
  test::expect_near_rel(yu, ys, 1e-14);
}

TEST(Spmv, FloatInstantiation) {
  CooMatrix<float> coo(3, 3);
  coo.add(0, 1, 2.0f);
  coo.add(1, 2, 3.0f);
  coo.add(2, 0, 4.0f);
  const auto a = CsrMatrix<float>::from_coo(coo);
  const AlignedVector<float> x{1.0f, 2.0f, 3.0f};
  AlignedVector<float> y(3);
  spmv<float>(a, x, y);
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  EXPECT_FLOAT_EQ(y[1], 9.0f);
  EXPECT_FLOAT_EQ(y[2], 4.0f);
}

TEST(Spmv, StencilRowSumsMatchDominance) {
  // Sanity on a generated stencil: y = A·1 equals row sums, which are
  // positive by diagonal dominance.
  const auto a = gen::make_laplacian_2d(10, 10);
  AlignedVector<double> ones(100, 1.0), y(100);
  spmv<double>(a, ones, y);
  for (double v : y) EXPECT_GT(v, 0.0);
}

}  // namespace
}  // namespace fbmpk
