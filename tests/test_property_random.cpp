// Seeded randomized differential-testing harness for mixed-precision
// sweeps (PR 4).
//
// Every iteration draws a matrix family, size and vector from the
// committed Xorshift64 generator (test_util.hpp), then runs the full
// {value precision} x {backend} x {index compression} x {schedule}
// cross-product against the exact scalar serial oracle:
//
//   - fp64 on the scalar/generic backends is bitwise equal to the
//     oracle (the dispatched twins replicate the accumulation order);
//   - every reduced-precision or vector configuration stays within the
//     documented bound (docs/KERNELS.md): the fast-mode reassociation
//     term plus the value-rounding term for the stored precision;
//   - split storage is bitwise equal to fp64 when the matrix's values
//     survive the hi/lo round-trip (lossless);
//   - for a fixed configuration, every schedule — serial, the ABMC
//     barrier and point-to-point engine, and the level scheduler's
//     barrier and point-to-point engine (natural order, reorder off) —
//     is bitwise identical to the others.
//
// The scheduler axis honors FBMPK_SCHEDULER: "abmc" restricts the
// parallel plans to the ABMC pair, "levels" to the level pair (CI's
// scheduler job runs the harness both ways), anything else or unset
// runs all four.
//
// The iteration count comes from FBMPK_PROP_SEEDS (CI runs 5). The
// seed is attached to every assertion via SCOPED_TRACE, so a failure
// names the exact case to replay.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "gen/kkt.hpp"
#include "gen/stencil.hpp"
#include "kernels/dispatch.hpp"
#include "sparse/packed_tri.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

double inf_norm_matrix(const CsrMatrix<double>& a) {
  double norm = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    double row = 0.0;
    for (index_t j = a.row_ptr()[i]; j < a.row_ptr()[i + 1]; ++j)
      row += std::abs(a.values()[j]);
    norm = std::max(norm, row);
  }
  return norm;
}

double inf_norm(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

index_t max_row_nnz(const CsrMatrix<double>& a) {
  index_t m = 0;
  for (index_t i = 0; i < a.rows(); ++i) m = std::max(m, a.row_nnz(i));
  return m;
}

/// Per-value relative rounding of the stored precision (0 for fp64:
/// the stream is the exact doubles).
double precision_eps(ValuePrecision p) {
  switch (p) {
    case ValuePrecision::kFp64:
      return 0.0;
    case ValuePrecision::kFp32:
      return 0x1.0p-24;
    case ValuePrecision::kSplit:
      return 0x1.0p-48;
  }
  return 0.0;
}

/// Error bound for one configuration vs the exact result
/// (docs/KERNELS.md): reassociation + value rounding, composed over k.
double error_bound(int k, double m, double eps_prec, double anorm,
                   double xnorm) {
  const double eps64 = std::numeric_limits<double>::epsilon();
  return 8.0 * k * (m * eps64 + eps_prec) * std::pow(anorm, k) * xnorm;
}

/// A random matrix from one of four structurally distinct families.
CsrMatrix<double> draw_matrix(test::Xorshift64& rng) {
  switch (rng.next() % 4) {
    case 0:  // symmetric banded (stencil-like after reordering)
      return test::random_matrix(
          static_cast<index_t>(rng.in_range(120, 280)),
          4.0 + 6.0 * rng.uniform(), /*symmetric=*/true, rng.next());
    case 1:  // unsymmetric banded
      return test::random_matrix(
          static_cast<index_t>(rng.in_range(100, 240)),
          4.0 + 5.0 * rng.uniform(), /*symmetric=*/false, rng.next());
    case 2:  // 2D Laplacian stencil
      return gen::make_laplacian_2d(
          static_cast<index_t>(rng.in_range(9, 17)),
          static_cast<index_t>(rng.in_range(9, 17)));
    default: {  // KKT saddle point
      gen::KktOptions o;
      o.seed = rng.next();
      return gen::make_kkt_saddle(static_cast<index_t>(rng.in_range(3, 5)),
                                  static_cast<index_t>(rng.in_range(3, 5)),
                                  static_cast<index_t>(rng.in_range(3, 5)),
                                  o);
    }
  }
}

/// Quantize values to a coarse binary grid so each survives the hi/lo
/// float round-trip: the resulting matrix is split-lossless.
CsrMatrix<double> quantize_values(const CsrMatrix<double>& a) {
  AlignedVector<index_t> rp(a.row_ptr().begin(), a.row_ptr().end());
  AlignedVector<index_t> ci(a.col_idx().begin(), a.col_idx().end());
  AlignedVector<double> va(a.values().begin(), a.values().end());
  for (auto& v : va) {
    v = std::round(v * 1024.0) * 0x1.0p-10;
    if (v == 0.0) v = 0x1.0p-10;  // keep the pattern (and the diagonal)
  }
  return CsrMatrix<double>(a.rows(), a.cols(), std::move(rp), std::move(ci),
                           std::move(va));
}

std::vector<KernelBackend> harness_backends() {
  std::vector<KernelBackend> v{KernelBackend::kScalar,
                               KernelBackend::kGeneric};
  const KernelBackend fast = resolve_backend(KernelBackend::kAuto);
  if (fast != KernelBackend::kScalar && fast != KernelBackend::kGeneric)
    v.push_back(fast);
  return v;
}

bool exact_backend(KernelBackend b) {
  return b == KernelBackend::kScalar || b == KernelBackend::kGeneric;
}

/// FBMPK_SCHEDULER env filter over the parallel-schedule axis.
struct SchedulerFilter {
  bool abmc = true;
  bool levels = true;
};

SchedulerFilter scheduler_filter() {
  const char* e = std::getenv("FBMPK_SCHEDULER");
  if (e == nullptr) return {};
  const std::string s(e);
  if (s == "abmc") return {true, false};
  if (s == "levels") return {false, true};
  return {};
}

/// One parallel plan of the schedule axis. The level plans run the
/// natural order (reorder off — the scheduler's home turf), so their
/// bitwise oracle is the *natural-order* serial plan: the permutation
/// changes each row sum's accumulation order, the schedule never does.
struct SchedPlan {
  std::string name;
  MpkPlan plan;
  bool natural = false;  ///< compare against the reorder=false oracle
};

/// The parallel plans of one configuration under the env filter:
/// ABMC barrier + engine, level barrier + engine (natural order).
std::vector<SchedPlan> parallel_plans(const CsrMatrix<double>& a,
                                      const PlanOptions& serial) {
  const SchedulerFilter f = scheduler_filter();
  std::vector<SchedPlan> plans;
  PlanOptions barrier = serial;
  barrier.parallel = true;
  if (f.abmc) {
    plans.push_back({"abmc-barrier", MpkPlan::build(a, barrier), false});
    PlanOptions engine = barrier;
    engine.sweep.sync = SweepSync::kPointToPoint;
    plans.push_back({"abmc-engine", MpkPlan::build(a, engine), false});
  }
  if (f.levels) {
    PlanOptions lbarrier = barrier;
    lbarrier.scheduler = Scheduler::kLevels;
    lbarrier.reorder = false;
    plans.push_back({"levels-barrier", MpkPlan::build(a, lbarrier), true});
    PlanOptions lengine = lbarrier;
    lengine.sweep.sync = SweepSync::kPointToPoint;
    plans.push_back({"levels-engine", MpkPlan::build(a, lengine), true});
  }
  return plans;
}

/// One full cross-product check of a (matrix, vector, k) case.
void check_case(const CsrMatrix<double>& a, const AlignedVector<double>& x,
                int k) {
  const double anorm = inf_norm_matrix(a);
  const double xnorm = inf_norm(x);
  const double m = static_cast<double>(max_row_nnz(a));

  // Oracle: exact scalar serial sweep, plain indices, fp64 values.
  PlanOptions oracle_opts;
  oracle_opts.parallel = false;
  auto oracle = MpkPlan::build(a, oracle_opts);
  AlignedVector<double> yref(x.size());
  oracle.power(x, k, yref);

  AlignedVector<double> ys(x.size()), ysn(x.size()), yb(x.size());
  for (const ValuePrecision prec :
       {ValuePrecision::kFp64, ValuePrecision::kFp32,
        ValuePrecision::kSplit}) {
    for (const KernelBackend backend : harness_backends()) {
      for (const bool compress : {false, true}) {
        SCOPED_TRACE(std::string("precision=") + precision_name(prec) +
                     " backend=" + backend_name(backend) +
                     " compress=" + (compress ? "1" : "0") +
                     " k=" + std::to_string(k));

        PlanOptions serial;
        serial.parallel = false;
        serial.kernel_backend = backend;
        serial.index_compress = compress;
        serial.value_precision = prec;
        auto ps = MpkPlan::build(a, serial);
        PlanOptions serial_nat = serial;
        serial_nat.reorder = false;
        auto psn = MpkPlan::build(a, serial_nat);

        if (prec != ValuePrecision::kFp64) {
          ASSERT_GT(ps.stats().packed_value_bytes, 0u);
        }

        ps.power(x, k, ys);
        psn.power(x, k, ysn);

        // Determinism: every schedule issues the same per-row kernels
        // in a different order but with identical operands.
        for (auto& sp : parallel_plans(a, serial)) {
          SCOPED_TRACE("schedule=" + sp.name);
          const auto& oracle_y = sp.natural ? ysn : ys;
          sp.plan.power(x, k, yb);
          for (std::size_t i = 0; i < ys.size(); ++i)
            ASSERT_EQ(oracle_y[i], yb[i]) << sp.name << " diverges at i="
                                          << i;
        }

        if (prec == ValuePrecision::kFp64 && exact_backend(backend)) {
          // Exact configurations reproduce the oracle bitwise.
          for (std::size_t i = 0; i < ys.size(); ++i)
            ASSERT_EQ(ys[i], yref[i]) << "exact config diverges at i=" << i;
        } else {
          const double bound =
              error_bound(k, m, precision_eps(prec), anorm, xnorm);
          for (std::size_t i = 0; i < ys.size(); ++i)
            ASSERT_LE(std::abs(ys[i] - yref[i]), bound)
                << "documented bound violated at i=" << i;
        }

        const bool lossless_split = prec == ValuePrecision::kSplit &&
                                    ps.packed_values().lossless();
        if (lossless_split && exact_backend(backend)) {
          // Lossless split decodes to the exact doubles, so the scalar
          // accumulation-order twins reproduce the oracle bitwise.
          for (std::size_t i = 0; i < ys.size(); ++i)
            ASSERT_EQ(ys[i], yref[i])
                << "lossless split diverges at i=" << i;
        }
      }
    }
  }
}

/// Batched sweeps: every lane of a try_power_batch call must be
/// bitwise identical to the serial scalar-backend B=1 run at the same
/// stored precision — the exact accumulation-order oracle — for every
/// backend, compression and schedule. nvec = 3 exercises the
/// non-power-of-two greedy chunking ({2, 1} remainder); nvec = 8 runs
/// a full one-chunk batch.
void check_batched_case(const CsrMatrix<double>& a, int k,
                        test::Xorshift64& rng) {
  const index_t n = a.rows();
  constexpr int kMaxNvec = 8;
  std::vector<AlignedVector<double>> xs;
  for (int b = 0; b < kMaxNvec; ++b)
    xs.push_back(test::random_vector(n, rng.next()));

  for (const ValuePrecision prec :
       {ValuePrecision::kFp64, ValuePrecision::kFp32,
        ValuePrecision::kSplit}) {
    for (const KernelBackend backend : harness_backends()) {
      for (const bool compress : {false, true}) {
        SCOPED_TRACE(std::string("precision=") + precision_name(prec) +
                     " backend=" + backend_name(backend) +
                     " compress=" + (compress ? "1" : "0") +
                     " k=" + std::to_string(k));

        PlanOptions serial;
        serial.parallel = false;
        serial.kernel_backend = backend;
        serial.index_compress = compress;
        serial.value_precision = prec;
        auto ps = MpkPlan::build(a, serial);
        auto parallel = parallel_plans(a, serial);

        // Per-lane B=1 oracle: scalar-backend serial run at the same
        // stored precision. The batch kernels replicate the scalar
        // accumulation order for every backend, so SIMD-backend plans
        // produce scalar-order lanes too.
        PlanOptions oracle = serial;
        oracle.kernel_backend = KernelBackend::kScalar;
        auto po = MpkPlan::build(a, oracle);
        PlanOptions oracle_nat = oracle;
        oracle_nat.reorder = false;
        auto pon = MpkPlan::build(a, oracle_nat);
        std::vector<AlignedVector<double>> yref(kMaxNvec), yref_nat(kMaxNvec);
        for (int b = 0; b < kMaxNvec; ++b) {
          yref[b].resize(n);
          po.power(xs[b], k, yref[b]);
          yref_nat[b].resize(n);
          pon.power(xs[b], k, yref_nat[b]);
        }

        for (const int nvec : {1, 2, 3, 8}) {
          SCOPED_TRACE("nvec=" + std::to_string(nvec));
          std::vector<const double*> xp(nvec);
          std::vector<AlignedVector<double>> ybat(nvec);
          std::vector<double*> yp(nvec);
          for (int b = 0; b < nvec; ++b) {
            xp[b] = xs[b].data();
            ybat[b].assign(static_cast<std::size_t>(n), 0.0);
            yp[b] = ybat[b].data();
          }
          struct Entry {
            std::string name;
            MpkPlan* plan;
            bool natural;
          };
          std::vector<Entry> plans{{"serial", &ps, false}};
          for (auto& sp : parallel)
            plans.push_back({sp.name, &sp.plan, sp.natural});
          for (auto& [name, plan, natural] : plans) {
            SCOPED_TRACE("schedule=" + name);
            const auto& ref = natural ? yref_nat : yref;
            for (int b = 0; b < nvec; ++b)
              std::fill(ybat[b].begin(), ybat[b].end(), 0.0);
            const Status st = plan->try_power_batch(
                xp.data(), static_cast<index_t>(nvec), k, yp.data());
            ASSERT_TRUE(st.ok()) << st.error().what();
            for (int b = 0; b < nvec; ++b) {
              SCOPED_TRACE("lane=" + std::to_string(b));
              for (index_t i = 0; i < n; ++i)
                ASSERT_EQ(ybat[b][i], ref[b][i])
                    << "batched lane diverges at i=" << i;
            }
          }
        }
      }
    }
  }
}

TEST(PropertyRandom, BatchedLanesMatchSerialOracleBitwise) {
  const int seeds = test::property_seed_count();
  for (int seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("FBMPK_PROP_SEED=" + std::to_string(seed));
    test::Xorshift64 rng(0x42415443ull ^
                         (static_cast<std::uint64_t>(seed) << 32));
    const auto a = draw_matrix(rng);
    const int k = static_cast<int>(rng.in_range(2, 6));
    check_batched_case(a, k, rng);
  }
}

TEST(PropertyRandom, MixedPrecisionCrossProductHoldsOverRandomCases) {
  const int seeds = test::property_seed_count();
  for (int seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("FBMPK_PROP_SEED=" + std::to_string(seed));
    test::Xorshift64 rng(0x46424d504bull ^
                         (static_cast<std::uint64_t>(seed) << 32));
    const auto a = draw_matrix(rng);
    const auto x = test::random_vector(a.rows(), rng.next());
    const int k = static_cast<int>(rng.in_range(2, 6));
    check_case(a, x, k);
  }
}

TEST(PropertyRandom, QuantizedMatrixIsSplitLosslessAndBitwiseExact) {
  const int seeds = test::property_seed_count();
  for (int seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("FBMPK_PROP_SEED=" + std::to_string(seed));
    test::Xorshift64 rng(0x51554e54ull ^
                         (static_cast<std::uint64_t>(seed) << 32));
    const auto a = quantize_values(draw_matrix(rng));
    const auto x = test::random_vector(a.rows(), rng.next());
    const int k = static_cast<int>(rng.in_range(2, 6));

    PlanOptions exact;
    exact.parallel = false;
    auto pe = MpkPlan::build(a, exact);

    PlanOptions split = exact;
    split.value_precision = ValuePrecision::kSplit;
    split.index_compress = true;
    auto psp = MpkPlan::build(a, split);
    ASSERT_TRUE(psp.packed_values().lossless())
        << "quantized values must survive the hi/lo round-trip";

    AlignedVector<double> ye(x.size()), ysp(x.size());
    pe.power(x, k, ye);
    psp.power(x, k, ysp);
    for (std::size_t i = 0; i < ye.size(); ++i)
      ASSERT_EQ(ye[i], ysp[i]) << "i=" << i;
  }
}

// The fp32 stream really is floats: a matrix whose values do not fit
// float range must be rejected at build, not silently truncated.
TEST(PropertyRandom, OutOfFloatRangeValuesAreRejected) {
  auto a = test::random_matrix(80, 5.0, /*symmetric=*/true, 77);
  AlignedVector<index_t> rp(a.row_ptr().begin(), a.row_ptr().end());
  AlignedVector<index_t> ci(a.col_idx().begin(), a.col_idx().end());
  AlignedVector<double> va(a.values().begin(), a.values().end());
  va[va.size() / 2] = 1e60;  // far beyond FLT_MAX
  CsrMatrix<double> big(a.rows(), a.cols(), std::move(rp), std::move(ci),
                        std::move(va));

  for (const ValuePrecision prec :
       {ValuePrecision::kFp32, ValuePrecision::kSplit}) {
    PlanOptions o;
    o.value_precision = prec;
    try {
      MpkPlan::build(big, o);
      FAIL() << "out-of-range values accepted for "
             << precision_name(prec);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kUnsupported);
    }
  }
}

}  // namespace
}  // namespace fbmpk
