// Figure 8 reproduction: FBMPK speedup over the standard MPK baseline
// as the power k sweeps 3..9, per matrix.
//
// Paper result: speedups grow with k (average 1.29-1.42x at k=3 up to
// 1.64-1.85x at k=9) because the share of matrix reads FBMPK saves is
// (k-1)/2k of the baseline's k sweeps.
#include "bench_common.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  auto opts = perf::BenchOptions::parse(argc, argv);
  if (opts.powers.empty()) opts.powers = {3, 4, 5, 6, 7, 8, 9};
  bench::print_banner("Figure 8 — speedup vs power k", opts);
  if (opts.threads > 0) set_threads(opts.threads);

  std::vector<std::string> headers{"matrix"};
  for (int k : opts.powers) headers.push_back("k=" + std::to_string(k));
  perf::Table table(headers);

  std::vector<RunningStats> per_k(opts.powers.size());
  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const auto x = bench::bench_vector(m.matrix.rows());
    const auto plan = bench::build_plan(m.matrix, opts, FbVariant::kBtb,
                                        /*parallel=*/false,
                                        /*reorder=*/false);
    MpkPlan::Workspace ws;

    std::vector<std::string> row{m.name};
    for (std::size_t i = 0; i < opts.powers.size(); ++i) {
      const int k = opts.powers[i];
      const double base_s = bench::time_baseline_mpk(m.matrix, x, k, opts);
      const double fb_s = bench::time_plan_power(plan, ws, x, k, opts);
      const double speedup = base_s / fb_s;
      per_k[i].add(speedup);
      row.push_back(perf::Table::fmt_ratio(speedup));
    }
    table.add_row(std::move(row));
  }

  std::vector<std::string> avg{"geomean"};
  for (auto& s : per_k) avg.push_back(perf::Table::fmt_ratio(s.geomean()));
  table.add_row(std::move(avg));
  table.print();
  std::printf("\npaper trend: averages rise from ~1.3x at k=3 to ~1.7x at "
              "k=9 as saved matrix sweeps accumulate\n");
  return 0;
}
