// Figure 9 reproduction: DRAM read+write volume of FBMPK relative to
// the standard MPK baseline for k = 3, 6, 9 — measured with the cache
// simulator (our LIKWID substitute) and cross-checked against the
// analytic traffic model.
//
// Paper result: measured ratios of ~74% (k=3), ~65% (k=6), ~62% (k=9)
// on average vs theoretical (k+1)/2k of 67%/58%/56%; sparser matrices
// (G3_circuit) benefit least because vector traffic dominates.
//
// The cache hierarchy is scaled so matrix footprint / LLC capacity
// matches the paper's regime (matrices ~20x the LLC).
#include <algorithm>

#include "bench_common.hpp"
#include "kernels/fbmpk.hpp"
#include "perf/cache_sim.hpp"
#include "perf/traffic_model.hpp"
#include "sparse/split.hpp"

using namespace fbmpk;

namespace {

// DRAM bytes of one traced FBMPK evaluation of A^k x.
std::uint64_t fbmpk_dram_bytes(const TriangularSplit<double>& s,
                               std::span<const double> x, int k,
                               double cache_scale) {
  perf::CacheHierarchy sim = perf::make_xeon_like_hierarchy(cache_scale);
  perf::CacheTracer tr{&sim};
  FbWorkspace<double> ws;
  fbmpk_sweep_btb(s, x, k, ws, [](int, index_t, double) {}, tr);
  sim.flush();
  return sim.dram_total_bytes();
}

std::uint64_t baseline_dram_bytes(const CsrMatrix<double>& a,
                                  std::span<const double> x, int k,
                                  double cache_scale) {
  perf::CacheHierarchy sim = perf::make_xeon_like_hierarchy(cache_scale);
  perf::CacheTracer tr{&sim};
  MpkWorkspace<double> ws;
  mpk_standard_sweep_traced(a, x, k, ws, [](int, index_t, double) {}, tr,
                            SpmvExec::kSerial);
  sim.flush();
  return sim.dram_total_bytes();
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = perf::BenchOptions::parse(argc, argv);
  // Simulation is ~100x slower than execution; default to smaller
  // matrices unless the caller overrides.
  if (opts.scale == 1.0) opts.scale = 0.12;
  if (opts.powers.empty()) opts.powers = {3, 6, 9};
  bench::print_banner("Figure 9 — simulated DRAM traffic ratio", opts);

  std::vector<std::string> headers{"matrix"};
  for (int k : opts.powers) {
    headers.push_back("k=" + std::to_string(k));
    headers.push_back("model k=" + std::to_string(k));
  }
  perf::Table table(headers);
  std::vector<RunningStats> per_k(opts.powers.size());
  bench::JsonReport report("fig09_memory");

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const auto x = bench::bench_vector(m.matrix.rows());
    const auto s = split_triangular(m.matrix);

    // Scale the hierarchy so the matrix is ~20 LLC capacities, like the
    // paper's runs (50-120M nnz vs a 35.75 MB LLC).
    const double footprint = static_cast<double>(m.matrix.storage_bytes());
    const double cache_scale = std::clamp(
        footprint / (20.0 * 35.75 * 1024 * 1024), 0.002, 1.0);

    const auto shape = perf::MatrixShape::of(m.matrix);
    std::vector<std::string> row{m.name};
    for (std::size_t i = 0; i < opts.powers.size(); ++i) {
      const int k = opts.powers[i];
      const auto fb = fbmpk_dram_bytes(s, x, k, cache_scale);
      const auto base = baseline_dram_bytes(m.matrix, x, k, cache_scale);
      const double ratio =
          static_cast<double>(fb) / static_cast<double>(base);
      per_k[i].add(ratio);
      row.push_back(perf::Table::fmt_percent(ratio));
      row.push_back(perf::Table::fmt_percent(perf::traffic_ratio(shape, k)));

      // Modeled-vs-measured per kernel: the analytic compulsory-byte
      // estimate against the cache simulator's DRAM count. The model
      // assumes matrix >> LLC, so the simulated hierarchy (scaled to the
      // paper's ~20x regime) should land within tens of percent.
      const double fb_model =
          static_cast<double>(perf::fbmpk_traffic(shape, k).total());
      const double base_model =
          static_cast<double>(perf::standard_mpk_traffic(shape, k).total());
      report.add({m.name, "fbmpk", k, 1, 0.0, 0.0,
                  static_cast<std::size_t>(fb), fb_model,
                  static_cast<double>(fb), "cache_sim"});
      report.add({m.name, "mpk", k, 1, 0.0, 0.0,
                  static_cast<std::size_t>(base), base_model,
                  static_cast<double>(base), "cache_sim"});
    }
    table.add_row(std::move(row));
  }

  std::vector<std::string> avg{"average"};
  for (std::size_t i = 0; i < per_k.size(); ++i) {
    avg.push_back(perf::Table::fmt_percent(per_k[i].mean()));
    avg.push_back("-");
  }
  table.add_row(std::move(avg));
  table.print();
  report.write();
  std::printf("\ntheory (k+1)/2k: k=3 67%%, k=6 58%%, k=9 56%%; paper "
              "measured averages 74%%, 65%%, 62%%\n");
  return 0;
}
