// Shared plumbing for the figure/table reproduction binaries.
//
// Methodology (paper §IV-C): each timed case runs `--warmup` untimed
// iterations then `--reps` timed ones and reports the geometric mean.
// Preprocessing (split + ABMC) is excluded from kernel timings, as in
// the paper. Matrices come from the analogue suite (DESIGN.md §5),
// scaled by --scale.
#pragma once

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "gen/suite.hpp"
#include "kernels/mpk_baseline.hpp"
#include "perf/harness.hpp"
#include "perf/traffic_model.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/threading.hpp"
#include "telemetry/hw_counters.hpp"

namespace fbmpk::bench {

/// Names selected by the options (default: the whole suite).
inline std::vector<std::string> selected_names(
    const perf::BenchOptions& opts) {
  return opts.matrices.empty() ? gen::suite_names() : opts.matrices;
}

/// Print the standard bench banner.
inline void print_banner(const char* what, const perf::BenchOptions& o) {
  std::printf("== FBMPK reproduction: %s ==\n", what);
  std::printf("scale=%.3g reps=%d warmup=%d blocks=%d threads=%d\n\n",
              o.scale, o.reps, o.warmup, static_cast<int>(o.num_blocks),
              o.threads > 0 ? o.threads : max_threads());
}

/// Robust per-run estimate under a noisy host: the median of reps.
/// (The paper reports the geometric mean of 50 runs on unloaded
/// machines; on a shared VM the median rejects interference spikes.)
inline double robust_seconds(const RunningStats& stats) {
  return stats.median();
}

/// Median seconds of the standard MPK baseline (A^k x, row-parallel
/// unrolled SpMV — the paper's "optimized kernel" baseline).
inline double time_baseline_mpk(const CsrMatrix<double>& a,
                                std::span<const double> x, int k,
                                const perf::BenchOptions& o) {
  const index_t n = a.rows();
  MpkWorkspace<double> ws;
  AlignedVector<double> y(static_cast<std::size_t>(n));
  return robust_seconds(perf::time_runs(
      [&] { mpk_power<double>(a, x, k, y, ws, SpmvExec::kParallel); },
      o.reps, o.warmup));
}

/// Median seconds of FBMPK through a prebuilt plan (kernel time only).
inline double time_plan_power(const MpkPlan& plan, MpkPlan::Workspace& ws,
                              std::span<const double> x, int k,
                              const perf::BenchOptions& o) {
  AlignedVector<double> y(static_cast<std::size_t>(plan.rows()));
  return robust_seconds(
      perf::time_runs([&] { plan.power(x, k, y, ws); }, o.reps, o.warmup));
}

/// Build a plan from bench options.
inline MpkPlan build_plan(const CsrMatrix<double>& a,
                          const perf::BenchOptions& o,
                          FbVariant variant = FbVariant::kBtb,
                          bool parallel = true, bool reorder = true) {
  PlanOptions popts;
  popts.reorder = reorder;
  popts.parallel = parallel;
  popts.variant = variant;
  popts.abmc.num_blocks = o.num_blocks;
  return MpkPlan::build(a, popts);
}

/// Deterministic x0 for every bench.
inline AlignedVector<double> bench_vector(index_t n) {
  Rng rng(0xbe7c);
  AlignedVector<double> v(static_cast<std::size_t>(n));
  for (auto& e : v) e = rng.next_double(-1.0, 1.0);
  return v;
}

/// Byte-meter a region with hardware counters: runs `fn` `runs` times
/// inside one counter window and returns the per-run DRAM byte count,
/// or -1 when no traffic-capable counter could be opened (restricted
/// perf_event_paranoid, VM without a PMU — see docs/OBSERVABILITY.md).
/// `source` reports the meter fidelity: "imc" for uncore CAS counters,
/// "llc_proxy" for the LLC-miss x cache-line estimate.
inline double measure_dram_bytes(const std::function<void()>& fn, int runs,
                                 std::string* source = nullptr) {
  if (source) source->clear();
  if (runs <= 0) return -1.0;
  telemetry::HwCounterGroup hw;
  if (!hw.availability().traffic()) return -1.0;
  hw.start();
  for (int r = 0; r < runs; ++r) fn();
  const telemetry::HwCounts counts = hw.stop();
  const std::int64_t bytes = counts.memory_bytes();
  if (bytes < 0) return -1.0;
  if (source) *source = counts.dram_direct ? "imc" : "llc_proxy";
  return static_cast<double>(bytes) / runs;
}

// ---------------------------------------------------------------------------
// Machine-readable results: every figure bench can mirror its table
// into BENCH_<name>.json so plots and regression checks do not have to
// scrape stdout.
// ---------------------------------------------------------------------------

/// One timed case. `bytes_moved` comes from the traffic model (the
/// compulsory-DRAM estimate for the whole A^k x evaluation), `gflops`
/// from the 2·nnz·sweeps flop count over the measured time.
///
/// The traffic-validation triple (schema v3): `modeled_bytes` is the
/// analytic model's estimate for one A^k x evaluation, and
/// `measured_bytes` is what a byte-capable meter actually observed for
/// one evaluation — hardware counters (telemetry::HwCounterGroup) or
/// the cache simulator, per `measured_source`. Negative means "not
/// measured" and exports as null; the deviation percentage
/// 100·(measured-modeled)/modeled is derived at write() time.
struct JsonRecord {
  std::string matrix;
  std::string kernel;  ///< e.g. "fbmpk", "mpk", "engine_p2p"
  int k = 0;
  int threads = 1;
  double seconds = 0.0;
  double gflops = 0.0;
  std::size_t bytes_moved = 0;
  double modeled_bytes = -1.0;
  double measured_bytes = -1.0;
  std::string measured_source;  ///< "imc" | "llc_proxy" | "cache_sim" | ""

  // Constructor (rather than aggregate init) so benches without a byte
  // meter can keep the seven-field v2 form without -Wmissing-field-
  // initializers noise under -Werror.
  JsonRecord(std::string matrix_, std::string kernel_, int k_, int threads_,
             double seconds_, double gflops_, std::size_t bytes_moved_,
             double modeled_bytes_ = -1.0, double measured_bytes_ = -1.0,
             std::string measured_source_ = {})
      : matrix(std::move(matrix_)),
        kernel(std::move(kernel_)),
        k(k_),
        threads(threads_),
        seconds(seconds_),
        gflops(gflops_),
        bytes_moved(bytes_moved_),
        modeled_bytes(modeled_bytes_),
        measured_bytes(measured_bytes_),
        measured_source(std::move(measured_source_)) {}
};

/// Accumulates records and writes `BENCH_<name>.json` on write() (or
/// destruction). Schema v3: a top-level object `{"schema_version": 3,
/// "records": [...]}` where each record keeps the flat stable keys of
/// v2 and adds modeled_bytes / measured_bytes / traffic_deviation_pct
/// / measured_source (null or "" when the case was not byte-metered),
/// so `jq .records` / pandas can consume it directly.
class JsonReport {
 public:
  static constexpr int kSchemaVersion = 3;

  explicit JsonReport(std::string name) : name_(std::move(name)) {}
  ~JsonReport() {
    if (!written_) write();
  }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void add(JsonRecord rec) { records_.push_back(std::move(rec)); }

  /// FBMPK flop rate for a measured case: both triangle sweeps touch
  /// each off-diagonal nnz once per pair plus head/tail, which is the
  /// same 2·nnz per full-matrix-equivalent sweep as standard MPK.
  static double gflops_of(const perf::MatrixShape& shape, double sweeps,
                          double seconds) {
    if (seconds <= 0.0) return 0.0;
    return 2.0 * static_cast<double>(shape.nnz) * sweeps / seconds / 1e9;
  }

  /// JSON string escaping (RFC 8259): quotes, backslashes and control
  /// characters. Matrix/kernel labels are normally plain identifiers,
  /// but a hostile --matrices flag must not produce invalid JSON.
  static std::string escape(const std::string& s) { return json_escape(s); }

  void write() {
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out.is_open()) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n\"schema_version\": " << kSchemaVersion << ",\n"
        << "\"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const JsonRecord& r = records_[i];
      out << "  {\"matrix\": \"" << escape(r.matrix) << "\", \"kernel\": \""
          << escape(r.kernel) << "\", \"k\": " << r.k
          << ", \"threads\": " << r.threads << ", \"seconds\": " << r.seconds
          << ", \"gflops\": " << r.gflops
          << ", \"bytes_moved\": " << r.bytes_moved << ", \"modeled_bytes\": "
          << (r.modeled_bytes >= 0 ? json_number(r.modeled_bytes) : "null")
          << ", \"measured_bytes\": "
          << (r.measured_bytes >= 0 ? json_number(r.measured_bytes) : "null")
          << ", \"traffic_deviation_pct\": ";
      if (r.measured_bytes >= 0 && r.modeled_bytes > 0) {
        out << json_number(
            100.0 * telemetry::traffic_deviation(r.measured_bytes,
                                                 r.modeled_bytes));
      } else {
        out << "null";
      }
      out << ", \"measured_source\": \"" << escape(r.measured_source) << "\"}"
          << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    out << "]\n}\n";
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  std::string name_;
  std::vector<JsonRecord> records_;
  bool written_ = false;
};

}  // namespace fbmpk::bench
