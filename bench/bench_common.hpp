// Shared plumbing for the figure/table reproduction binaries.
//
// Methodology (paper §IV-C): each timed case runs `--warmup` untimed
// iterations then `--reps` timed ones and reports the geometric mean.
// Preprocessing (split + ABMC) is excluded from kernel timings, as in
// the paper. Matrices come from the analogue suite (DESIGN.md §5),
// scaled by --scale.
#pragma once

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "gen/suite.hpp"
#include "kernels/mpk_baseline.hpp"
#include "perf/harness.hpp"
#include "perf/traffic_model.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/threading.hpp"

namespace fbmpk::bench {

/// Names selected by the options (default: the whole suite).
inline std::vector<std::string> selected_names(
    const perf::BenchOptions& opts) {
  return opts.matrices.empty() ? gen::suite_names() : opts.matrices;
}

/// Print the standard bench banner.
inline void print_banner(const char* what, const perf::BenchOptions& o) {
  std::printf("== FBMPK reproduction: %s ==\n", what);
  std::printf("scale=%.3g reps=%d warmup=%d blocks=%d threads=%d\n\n",
              o.scale, o.reps, o.warmup, static_cast<int>(o.num_blocks),
              o.threads > 0 ? o.threads : max_threads());
}

/// Robust per-run estimate under a noisy host: the median of reps.
/// (The paper reports the geometric mean of 50 runs on unloaded
/// machines; on a shared VM the median rejects interference spikes.)
inline double robust_seconds(const RunningStats& stats) {
  return stats.median();
}

/// Median seconds of the standard MPK baseline (A^k x, row-parallel
/// unrolled SpMV — the paper's "optimized kernel" baseline).
inline double time_baseline_mpk(const CsrMatrix<double>& a,
                                std::span<const double> x, int k,
                                const perf::BenchOptions& o) {
  const index_t n = a.rows();
  MpkWorkspace<double> ws;
  AlignedVector<double> y(static_cast<std::size_t>(n));
  return robust_seconds(perf::time_runs(
      [&] { mpk_power<double>(a, x, k, y, ws, SpmvExec::kParallel); },
      o.reps, o.warmup));
}

/// Median seconds of FBMPK through a prebuilt plan (kernel time only).
inline double time_plan_power(const MpkPlan& plan, MpkPlan::Workspace& ws,
                              std::span<const double> x, int k,
                              const perf::BenchOptions& o) {
  AlignedVector<double> y(static_cast<std::size_t>(plan.rows()));
  return robust_seconds(
      perf::time_runs([&] { plan.power(x, k, y, ws); }, o.reps, o.warmup));
}

/// Build a plan from bench options.
inline MpkPlan build_plan(const CsrMatrix<double>& a,
                          const perf::BenchOptions& o,
                          FbVariant variant = FbVariant::kBtb,
                          bool parallel = true, bool reorder = true) {
  PlanOptions popts;
  popts.reorder = reorder;
  popts.parallel = parallel;
  popts.variant = variant;
  popts.abmc.num_blocks = o.num_blocks;
  return MpkPlan::build(a, popts);
}

/// Deterministic x0 for every bench.
inline AlignedVector<double> bench_vector(index_t n) {
  Rng rng(0xbe7c);
  AlignedVector<double> v(static_cast<std::size_t>(n));
  for (auto& e : v) e = rng.next_double(-1.0, 1.0);
  return v;
}

// ---------------------------------------------------------------------------
// Machine-readable results: every figure bench can mirror its table
// into BENCH_<name>.json so plots and regression checks do not have to
// scrape stdout.
// ---------------------------------------------------------------------------

/// One timed case. `bytes_moved` comes from the traffic model (the
/// compulsory-DRAM estimate for the whole A^k x evaluation), `gflops`
/// from the 2·nnz·sweeps flop count over the measured time.
struct JsonRecord {
  std::string matrix;
  std::string kernel;  ///< e.g. "fbmpk", "mpk", "engine_p2p"
  int k = 0;
  int threads = 1;
  double seconds = 0.0;
  double gflops = 0.0;
  std::size_t bytes_moved = 0;
};

/// Accumulates records and writes `BENCH_<name>.json` on write() (or
/// destruction). Schema v2: a top-level object `{"schema_version": 2,
/// "records": [...]}` where each record keeps the flat stable keys of
/// v1, so `jq .records` / pandas can consume it directly.
class JsonReport {
 public:
  static constexpr int kSchemaVersion = 2;

  explicit JsonReport(std::string name) : name_(std::move(name)) {}
  ~JsonReport() {
    if (!written_) write();
  }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void add(JsonRecord rec) { records_.push_back(std::move(rec)); }

  /// FBMPK flop rate for a measured case: both triangle sweeps touch
  /// each off-diagonal nnz once per pair plus head/tail, which is the
  /// same 2·nnz per full-matrix-equivalent sweep as standard MPK.
  static double gflops_of(const perf::MatrixShape& shape, double sweeps,
                          double seconds) {
    if (seconds <= 0.0) return 0.0;
    return 2.0 * static_cast<double>(shape.nnz) * sweeps / seconds / 1e9;
  }

  /// JSON string escaping (RFC 8259): quotes, backslashes and control
  /// characters. Matrix/kernel labels are normally plain identifiers,
  /// but a hostile --matrices flag must not produce invalid JSON.
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  void write() {
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out.is_open()) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n\"schema_version\": " << kSchemaVersion << ",\n"
        << "\"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const JsonRecord& r = records_[i];
      out << "  {\"matrix\": \"" << escape(r.matrix) << "\", \"kernel\": \""
          << escape(r.kernel) << "\", \"k\": " << r.k
          << ", \"threads\": " << r.threads << ", \"seconds\": " << r.seconds
          << ", \"gflops\": " << r.gflops
          << ", \"bytes_moved\": " << r.bytes_moved << "}"
          << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    out << "]\n}\n";
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  std::string name_;
  std::vector<JsonRecord> records_;
  bool written_ = false;
};

}  // namespace fbmpk::bench
