// Shared plumbing for the figure/table reproduction binaries.
//
// Methodology (paper §IV-C): each timed case runs `--warmup` untimed
// iterations then `--reps` timed ones and reports the geometric mean.
// Preprocessing (split + ABMC) is excluded from kernel timings, as in
// the paper. Matrices come from the analogue suite (DESIGN.md §5),
// scaled by --scale.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "gen/suite.hpp"
#include "kernels/mpk_baseline.hpp"
#include "perf/harness.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/threading.hpp"

namespace fbmpk::bench {

/// Names selected by the options (default: the whole suite).
inline std::vector<std::string> selected_names(
    const perf::BenchOptions& opts) {
  return opts.matrices.empty() ? gen::suite_names() : opts.matrices;
}

/// Print the standard bench banner.
inline void print_banner(const char* what, const perf::BenchOptions& o) {
  std::printf("== FBMPK reproduction: %s ==\n", what);
  std::printf("scale=%.3g reps=%d warmup=%d blocks=%d threads=%d\n\n",
              o.scale, o.reps, o.warmup, static_cast<int>(o.num_blocks),
              o.threads > 0 ? o.threads : max_threads());
}

/// Robust per-run estimate under a noisy host: the median of reps.
/// (The paper reports the geometric mean of 50 runs on unloaded
/// machines; on a shared VM the median rejects interference spikes.)
inline double robust_seconds(const RunningStats& stats) {
  return stats.median();
}

/// Median seconds of the standard MPK baseline (A^k x, row-parallel
/// unrolled SpMV — the paper's "optimized kernel" baseline).
inline double time_baseline_mpk(const CsrMatrix<double>& a,
                                std::span<const double> x, int k,
                                const perf::BenchOptions& o) {
  const index_t n = a.rows();
  MpkWorkspace<double> ws;
  AlignedVector<double> y(static_cast<std::size_t>(n));
  return robust_seconds(perf::time_runs(
      [&] { mpk_power<double>(a, x, k, y, ws, SpmvExec::kParallel); },
      o.reps, o.warmup));
}

/// Median seconds of FBMPK through a prebuilt plan (kernel time only).
inline double time_plan_power(const MpkPlan& plan, MpkPlan::Workspace& ws,
                              std::span<const double> x, int k,
                              const perf::BenchOptions& o) {
  AlignedVector<double> y(static_cast<std::size_t>(plan.rows()));
  return robust_seconds(
      perf::time_runs([&] { plan.power(x, k, y, ws); }, o.reps, o.warmup));
}

/// Build a plan from bench options.
inline MpkPlan build_plan(const CsrMatrix<double>& a,
                          const perf::BenchOptions& o,
                          FbVariant variant = FbVariant::kBtb,
                          bool parallel = true, bool reorder = true) {
  PlanOptions popts;
  popts.reorder = reorder;
  popts.parallel = parallel;
  popts.variant = variant;
  popts.abmc.num_blocks = o.num_blocks;
  return MpkPlan::build(a, popts);
}

/// Deterministic x0 for every bench.
inline AlignedVector<double> bench_vector(index_t n) {
  Rng rng(0xbe7c);
  AlignedVector<double> v(static_cast<std::size_t>(n));
  for (auto& e : v) e = rng.next_double(-1.0, 1.0);
  return v;
}

}  // namespace fbmpk::bench
