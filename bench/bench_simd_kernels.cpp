// Row-kernel backend comparison: exact scalar vs the dispatched vector
// backends (generic / AVX2 / AVX-512) and the band-compressed column
// sidecar, single thread, k in {4, 8, 16}.
//
// All configurations run the identical serial FBMPK pipeline; the only
// difference is the per-row dot kernel (kernels/dispatch.hpp) and the
// column-index stream (sparse/packed_tri.hpp). "scalar" is the exact
// reference; the vector backends reassociate within a row dot
// (docs/KERNELS.md bounds the error). bytes_moved uses the traffic
// model with the measured sidecar bytes/nnz for compressed runs.
//
// Results land in BENCH_simd_kernels.json.
#include "bench_common.hpp"

#include "kernels/dispatch.hpp"

using namespace fbmpk;

namespace {

struct Config {
  std::string label;
  KernelBackend backend;
  bool compress;
};

}  // namespace

int main(int argc, char** argv) {
  auto opts = perf::BenchOptions::parse(argc, argv);
  bench::print_banner("row kernels — scalar vs SIMD vs compressed", opts);
  set_threads(1);  // isolate the per-row kernel, not the schedule

  std::vector<Config> configs{{"scalar", KernelBackend::kScalar, false},
                              {"scalar_packed", KernelBackend::kScalar, true}};
  for (const KernelBackend b :
       {KernelBackend::kGeneric, KernelBackend::kAvx2,
        KernelBackend::kAvx512}) {
    if (!backend_available(b)) continue;
    configs.push_back({backend_name(b), b, false});
    configs.push_back({std::string(backend_name(b)) + "_packed", b, true});
  }

  const std::vector<int> powers =
      opts.powers.empty() ? std::vector<int>{4, 8, 16} : opts.powers;

  perf::Table table({"matrix", "k", "kernel", "ms", "vs_scalar"});
  bench::JsonReport report("simd_kernels");

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const auto x = bench::bench_vector(m.matrix.rows());
    const auto shape = perf::MatrixShape::of(m.matrix);

    for (const int k : powers) {
      double scalar_s = 0.0;
      for (const Config& c : configs) {
        PlanOptions popts;
        popts.parallel = false;  // serial: kernel time, no schedule noise
        popts.kernel_backend = c.backend;
        popts.index_compress = c.compress;
        auto plan = MpkPlan::build(m.matrix, popts);

        MpkPlan::Workspace ws;
        const double s = bench::time_plan_power(plan, ws, x, k, opts);
        if (c.backend == KernelBackend::kScalar && !c.compress) scalar_s = s;

        table.add_row({m.name, std::to_string(k), c.label,
                       perf::Table::fmt(s * 1e3),
                       perf::Table::fmt_ratio(scalar_s / s)});

        const double sweeps = perf::fbmpk_sweep_count(k);
        const double idx_bytes =
            c.compress ? plan.packed_index().bytes_per_nnz()
                       : static_cast<double>(sizeof(index_t));
        const std::size_t bytes =
            perf::fbmpk_traffic_compressed(shape, k, idx_bytes).total();
        report.add({m.name, c.label, k, 1, s,
                    bench::JsonReport::gflops_of(shape, sweeps, s), bytes});
      }
    }
  }

  table.print();
  report.write();
  std::printf(
      "\nsingle-thread serial pipeline; scalar is the exact reference, "
      "vector backends\nreassociate within one row dot, *_packed reads "
      "u16 band offsets where a band's\ncolumn range fits (full-width "
      "fallback otherwise).\n");
  return 0;
}
