// Figure 10 reproduction: contribution of the two FBMPK optimizations at
// k = 5 — the forward-backward pipeline alone (FB, split iterate
// storage) versus FB plus back-to-back interleaved vectors (FB+BtB).
//
// Paper result (FT-2000+): FB alone averages 1.41x over the baseline,
// FB+BtB 1.50x; the BtB gain is modest on Xeon.
#include "bench_common.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  const auto opts = perf::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 10 — FB vs FB+BtB ablation, k=5", opts);
  if (opts.threads > 0) set_threads(opts.threads);
  const int k = opts.powers.empty() ? 5 : opts.powers.front();

  perf::Table table(
      {"matrix", "baseline_ms", "FB_ms", "FB+BtB_ms", "FB", "FB+BtB"});
  RunningStats fb_speedups, btb_speedups;

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const auto x = bench::bench_vector(m.matrix.rows());

    // Serial pipelines on the original ordering isolate the storage-
    // layout effect; the only difference between them is BtB.
    const auto plan_fb =
        bench::build_plan(m.matrix, opts, FbVariant::kSplit,
                          /*parallel=*/false, /*reorder=*/false);
    const auto plan_btb =
        bench::build_plan(m.matrix, opts, FbVariant::kBtb,
                          /*parallel=*/false, /*reorder=*/false);
    MpkPlan::Workspace w1, w2;

    const double base_s = bench::time_baseline_mpk(m.matrix, x, k, opts);
    const double fb_s = bench::time_plan_power(plan_fb, w1, x, k, opts);
    const double btb_s = bench::time_plan_power(plan_btb, w2, x, k, opts);
    fb_speedups.add(base_s / fb_s);
    btb_speedups.add(base_s / btb_s);

    table.add_row({m.name, perf::Table::fmt(base_s * 1e3),
                   perf::Table::fmt(fb_s * 1e3),
                   perf::Table::fmt(btb_s * 1e3),
                   perf::Table::fmt_ratio(base_s / fb_s),
                   perf::Table::fmt_ratio(base_s / btb_s)});
  }

  table.print();
  std::printf("\ngeomean: FB %.2fx, FB+BtB %.2fx (paper FT2000+: 1.41x vs "
              "1.50x)\n",
              fb_speedups.geomean(), btb_speedups.geomean());
  return 0;
}
