// Scheduler ablation (DESIGN.md §7 + paper §VII): ABMC coloring versus
// level scheduling for parallel FBMPK, k = 5.
//
// ABMC pays a permutation (locality risk, preprocessing cost) to get a
// handful of barriers per sweep; level scheduling keeps the original
// order but pays one barrier per dependency level — unless the blocked
// level engine aggregates levels into cache-sized stages and replaces
// the barriers with per-thread epoch waits. This bench reports the
// structural trade-off (colors vs levels vs stages, i.e. sync points
// per forward+backward pair) and the measured kernel times on this
// host, across four rungs:
//   abmc          ABMC permutation + per-color barriers
//   levels_barrier natural order, one barrier per dependency level
//   levels_engine  natural order, blocked stages + p2p epoch sync
//   serial         natural order, single thread (the bitwise oracle)
//
// Results land in BENCH_scheduler_ablation.json (schema v3).
#include "bench_common.hpp"
#include "kernels/fbmpk_level.hpp"
#include "perf/cost_model.hpp"
#include "reorder/nnz_partition.hpp"
#include "sparse/split.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  const auto opts = perf::BenchOptions::parse(argc, argv);
  bench::print_banner("Ablation — ABMC vs level scheduling, k=5", opts);
  if (opts.threads > 0) set_threads(opts.threads);
  const int threads = opts.threads > 0 ? opts.threads : max_threads();
  const int k = opts.powers.empty() ? 5 : opts.powers.front();

  perf::Table table({"matrix", "colors", "levels(fwd)", "stages(fwd)",
                     "abmc_ms", "lvl_bar_ms", "lvl_eng_ms", "serial_ms"});
  const index_t part_threads = opts.threads > 0 ? opts.threads : 4;
  perf::Table imbalance({"matrix", "threads", "static:worst", "static:mean",
                         "lpt:worst", "lpt:mean"});
  bench::JsonReport report("scheduler_ablation");

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const auto x = bench::bench_vector(m.matrix.rows());
    const auto shape = perf::MatrixShape::of(m.matrix);

    PlanOptions abmc_opts;
    abmc_opts.abmc.num_blocks = opts.num_blocks;
    auto abmc_plan = MpkPlan::build(m.matrix, abmc_opts);

    PlanOptions lvl_opts;
    lvl_opts.reorder = false;
    lvl_opts.scheduler = Scheduler::kLevels;
    auto lvl_plan = MpkPlan::build(m.matrix, lvl_opts);

    PlanOptions eng_opts = lvl_opts;
    eng_opts.sweep.sync = SweepSync::kPointToPoint;
    auto eng_plan = MpkPlan::build(m.matrix, eng_opts);

    PlanOptions ser_opts;
    ser_opts.reorder = false;
    ser_opts.parallel = false;
    auto ser_plan = MpkPlan::build(m.matrix, ser_opts);

    MpkPlan::Workspace w1, w2, w3, w4;
    const double abmc_s = bench::time_plan_power(abmc_plan, w1, x, k, opts);
    const double lvl_s = bench::time_plan_power(lvl_plan, w2, x, k, opts);
    const double eng_s = bench::time_plan_power(eng_plan, w3, x, k, opts);
    const double ser_s = bench::time_plan_power(ser_plan, w4, x, k, opts);

    const index_t colors = abmc_plan.stats().num_colors;
    const index_t lv_f = lvl_plan.stats().num_levels_forward;
    const index_t st_f = eng_plan.level_sweep_schedule().fwd.num_stages;
    table.add_row({m.name, std::to_string(colors), std::to_string(lv_f),
                   std::to_string(st_f), perf::Table::fmt(abmc_s * 1e3),
                   perf::Table::fmt(lvl_s * 1e3),
                   perf::Table::fmt(eng_s * 1e3),
                   perf::Table::fmt(ser_s * 1e3)});

    // One schema-v3 record per rung, so regression checks can diff the
    // scheduler gap without scraping stdout. All four rungs evaluate
    // the same A^k x, so the traffic model's compulsory-byte estimate
    // is shared.
    const double sweeps = perf::fbmpk_sweep_count(k);
    const std::size_t bytes = perf::fbmpk_traffic(shape, k).total();
    const double modeled = static_cast<double>(bytes);
    report.add({m.name, "abmc", k, threads, abmc_s,
                bench::JsonReport::gflops_of(shape, sweeps, abmc_s), bytes,
                modeled});
    report.add({m.name, "levels_barrier", k, threads, lvl_s,
                bench::JsonReport::gflops_of(shape, sweeps, lvl_s), bytes,
                modeled});
    report.add({m.name, "levels_engine", k, threads, eng_s,
                bench::JsonReport::gflops_of(shape, sweeps, eng_s), bytes,
                modeled});
    report.add({m.name, "serial", k, 1, ser_s,
                bench::JsonReport::gflops_of(shape, sweeps, ser_s), bytes,
                modeled});

    // Per-color thread imbalance (max/mean nnz per thread): what the
    // sweep engine's nnz-LPT partition buys over the omp-static split.
    const auto& split = abmc_plan.split();
    const auto weights = block_nnz_weights(
        abmc_plan.schedule(), split.lower.row_ptr(), split.upper.row_ptr());
    const auto stat = perf::partition_imbalance(
        abmc_plan.schedule(), weights, part_threads,
        PartitionStrategy::kBlockStatic);
    const auto lpt = perf::partition_imbalance(
        abmc_plan.schedule(), weights, part_threads,
        PartitionStrategy::kNnzLpt);
    imbalance.add_row({m.name, std::to_string(part_threads),
                       perf::Table::fmt(stat.worst),
                       perf::Table::fmt(stat.mean),
                       perf::Table::fmt(lpt.worst),
                       perf::Table::fmt(lpt.mean)});
  }

  table.print();
  std::printf("\nper-color load imbalance (max/mean nnz per thread; 1.0 = "
              "perfect):\n");
  imbalance.print();
  report.write();
  std::printf(
      "\nlevel scheduling keeps the original order (no locality loss, no "
      "permutation cost)\nbut per-level barriers cost orders of magnitude "
      "more sync than ABMC's per-color\nbarriers — the reason the paper "
      "chose multi-coloring (§III-D). The blocked level\nengine "
      "(levels_engine) closes that gap: levels aggregate into cache-sized "
      "stages\nand threads wait on actual predecessors via epoch counters, "
      "so the natural\norder becomes competitive on matrices where ABMC's "
      "permutation hurts locality\nor its color count explodes (see "
      "docs/PARALLELISM.md for the decision table).\n");
  return 0;
}
