// Scheduler ablation (DESIGN.md §7 + paper §VII): ABMC coloring versus
// level scheduling for parallel FBMPK, k = 5.
//
// ABMC pays a permutation (locality risk, preprocessing cost) to get a
// handful of barriers per sweep; level scheduling keeps the original
// order but pays one barrier per dependency level. This bench reports
// the structural trade-off (colors vs levels, i.e. barriers per
// forward+backward pair) and the measured kernel times on this host.
#include "bench_common.hpp"
#include "kernels/fbmpk_level.hpp"
#include "perf/cost_model.hpp"
#include "reorder/nnz_partition.hpp"
#include "sparse/split.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  const auto opts = perf::BenchOptions::parse(argc, argv);
  bench::print_banner("Ablation — ABMC vs level scheduling, k=5", opts);
  if (opts.threads > 0) set_threads(opts.threads);
  const int k = opts.powers.empty() ? 5 : opts.powers.front();

  perf::Table table({"matrix", "colors", "levels(fwd)", "barriers/pair:abmc",
                     "barriers/pair:lvl", "abmc_ms", "level_ms", "serial_ms"});
  const index_t part_threads = opts.threads > 0 ? opts.threads : 4;
  perf::Table imbalance({"matrix", "threads", "static:worst", "static:mean",
                         "lpt:worst", "lpt:mean"});

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const auto x = bench::bench_vector(m.matrix.rows());

    PlanOptions abmc_opts;
    abmc_opts.abmc.num_blocks = opts.num_blocks;
    auto abmc_plan = MpkPlan::build(m.matrix, abmc_opts);

    PlanOptions lvl_opts;
    lvl_opts.reorder = false;
    lvl_opts.scheduler = Scheduler::kLevels;
    auto lvl_plan = MpkPlan::build(m.matrix, lvl_opts);

    PlanOptions ser_opts;
    ser_opts.reorder = false;
    ser_opts.parallel = false;
    auto ser_plan = MpkPlan::build(m.matrix, ser_opts);

    MpkPlan::Workspace w1, w2, w3;
    const double abmc_s = bench::time_plan_power(abmc_plan, w1, x, k, opts);
    const double lvl_s = bench::time_plan_power(lvl_plan, w2, x, k, opts);
    const double ser_s = bench::time_plan_power(ser_plan, w3, x, k, opts);

    const index_t colors = abmc_plan.stats().num_colors;
    const index_t lv_f = lvl_plan.stats().num_levels_forward;
    const index_t lv_b = lvl_plan.stats().num_levels_backward;
    table.add_row({m.name, std::to_string(colors), std::to_string(lv_f),
                   std::to_string(2 * colors), std::to_string(lv_f + lv_b),
                   perf::Table::fmt(abmc_s * 1e3),
                   perf::Table::fmt(lvl_s * 1e3),
                   perf::Table::fmt(ser_s * 1e3)});

    // Per-color thread imbalance (max/mean nnz per thread): what the
    // sweep engine's nnz-LPT partition buys over the omp-static split.
    const auto& split = abmc_plan.split();
    const auto weights = block_nnz_weights(
        abmc_plan.schedule(), split.lower.row_ptr(), split.upper.row_ptr());
    const auto stat = perf::partition_imbalance(
        abmc_plan.schedule(), weights, part_threads,
        PartitionStrategy::kBlockStatic);
    const auto lpt = perf::partition_imbalance(
        abmc_plan.schedule(), weights, part_threads,
        PartitionStrategy::kNnzLpt);
    imbalance.add_row({m.name, std::to_string(part_threads),
                       perf::Table::fmt(stat.worst),
                       perf::Table::fmt(stat.mean),
                       perf::Table::fmt(lpt.worst),
                       perf::Table::fmt(lpt.mean)});
  }

  table.print();
  std::printf("\nper-color load imbalance (max/mean nnz per thread; 1.0 = "
              "perfect):\n");
  imbalance.print();
  std::printf(
      "\nlevel scheduling keeps the original order (no locality loss, no "
      "permutation cost)\nbut needs orders of magnitude more barriers per "
      "sweep pair than ABMC —\nthe reason the paper chose multi-coloring "
      "(§III-D) and lists level scheduling as future work (§VII)\n");
  return 0;
}
