// Figure 11 reproduction: one-off ABMC preprocessing cost, normalized to
// single-thread SpMV invocations of the same matrix.
//
// Paper result: on average the reorder costs ~36 SpMVs (range roughly
// 15-70), amortized away because the plan is reused across many MPK
// calls. We additionally ablate the blocking strategy (BFS "algebraic"
// aggregation vs contiguous chunking) and the coloring order — design
// choices DESIGN.md §7 calls out.
#include "bench_common.hpp"
#include "kernels/spmv.hpp"
#include "reorder/abmc.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  const auto opts = perf::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 11 — ABMC preprocessing overhead", opts);

  perf::Table table({"matrix", "spmv_ms", "abmc_ms", "#spmv_equiv",
                     "contig_ms", "colors(bfs)", "colors(contig)",
                     "colors(LF)"});
  RunningStats equivalents;

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const index_t n = m.matrix.rows();
    const auto x = bench::bench_vector(n);
    AlignedVector<double> y(static_cast<std::size_t>(n));

    const double spmv_s =
        perf::time_runs(
            [&] { spmv<double>(m.matrix, x, y, SpmvExec::kUnrolled); },
            opts.reps, opts.warmup)
            .geomean();

    AbmcOptions bfs;
    bfs.num_blocks = opts.num_blocks;
    Timer t_bfs;
    const auto o_bfs = abmc_order(m.matrix, bfs);
    const double abmc_s = t_bfs.seconds();

    AbmcOptions contig = bfs;
    contig.blocking = BlockingStrategy::kContiguous;
    Timer t_contig;
    const auto o_contig = abmc_order(m.matrix, contig);
    const double contig_s = t_contig.seconds();

    AbmcOptions lf = bfs;
    lf.coloring = ColoringOrder::kLargestDegreeFirst;
    const auto o_lf = abmc_order(m.matrix, lf);

    const double equiv = abmc_s / spmv_s;
    equivalents.add(equiv);
    table.add_row({m.name, perf::Table::fmt(spmv_s * 1e3),
                   perf::Table::fmt(abmc_s * 1e3),
                   perf::Table::fmt(equiv, 1),
                   perf::Table::fmt(contig_s * 1e3),
                   std::to_string(o_bfs.num_colors),
                   std::to_string(o_contig.num_colors),
                   std::to_string(o_lf.num_colors)});
  }

  table.print();
  std::printf("\naverage preprocessing cost: %.1f single-thread SpMV "
              "invocations (paper average: 36; one-off, amortized over "
              "reuse)\n",
              equivalents.mean());
  return 0;
}
