// Kernel microbenchmarks (google-benchmark): SpMV flavors, FBMPK sweep
// variants across k, and the ABMC block-count sensitivity the paper
// leaves at a 512/1024 default (DESIGN.md §7 ablation).
#include <benchmark/benchmark.h>

#include "core/plan.hpp"
#include "gen/stencil.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/fbmpk_parallel.hpp"
#include "kernels/mpk_baseline.hpp"
#include "kernels/spmv.hpp"
#include "reorder/abmc.hpp"
#include "sparse/split.hpp"
#include "support/rng.hpp"

namespace {

using namespace fbmpk;

// One shared workload: a 3D 27-point block matrix, ~59k rows / ~1.5M
// nnz — big enough to stream from memory, small enough to iterate fast.
struct Workload {
  CsrMatrix<double> a;
  TriangularSplit<double> split;
  AlignedVector<double> x;

  Workload() {
    gen::BlockStencilOptions o;
    o.kind = gen::StencilKind::kBox;
    o.dof = 2;
    o.seed = 7;
    a = gen::make_block_stencil({31, 31, 31}, o);
    split = split_triangular(a);
    Rng rng(11);
    x.resize(static_cast<std::size_t>(a.rows()));
    for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  }
};

const Workload& workload() {
  static const Workload w;
  return w;
}

void BM_SpmvSerial(benchmark::State& state) {
  const auto& w = workload();
  AlignedVector<double> y(w.x.size());
  for (auto _ : state) {
    spmv<double>(w.a, w.x, y, SpmvExec::kSerial);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.a.storage_bytes()));
}
BENCHMARK(BM_SpmvSerial);

void BM_SpmvUnrolled(benchmark::State& state) {
  const auto& w = workload();
  AlignedVector<double> y(w.x.size());
  for (auto _ : state) {
    spmv<double>(w.a, w.x, y, SpmvExec::kUnrolled);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.a.storage_bytes()));
}
BENCHMARK(BM_SpmvUnrolled);

void BM_SpmvParallel(benchmark::State& state) {
  const auto& w = workload();
  AlignedVector<double> y(w.x.size());
  for (auto _ : state) {
    spmv<double>(w.a, w.x, y, SpmvExec::kParallel);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SpmvParallel);

void BM_StandardMpk(benchmark::State& state) {
  const auto& w = workload();
  const int k = static_cast<int>(state.range(0));
  MpkWorkspace<double> ws;
  AlignedVector<double> y(w.x.size());
  for (auto _ : state) {
    mpk_power<double>(w.a, w.x, k, y, ws, SpmvExec::kUnrolled);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_StandardMpk)->Arg(3)->Arg(5)->Arg(9);

void BM_FbmpkBtb(benchmark::State& state) {
  const auto& w = workload();
  const int k = static_cast<int>(state.range(0));
  FbWorkspace<double> ws;
  AlignedVector<double> y(w.x.size());
  for (auto _ : state) {
    fbmpk_power<double>(w.split, w.x, k, y, ws, FbVariant::kBtb);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FbmpkBtb)->Arg(3)->Arg(5)->Arg(9);

void BM_FbmpkSplit(benchmark::State& state) {
  const auto& w = workload();
  const int k = static_cast<int>(state.range(0));
  FbWorkspace<double> ws;
  AlignedVector<double> y(w.x.size());
  for (auto _ : state) {
    fbmpk_power<double>(w.split, w.x, k, y, ws, FbVariant::kSplit);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FbmpkSplit)->Arg(3)->Arg(5)->Arg(9);

void BM_FbmpkParallelBlocks(benchmark::State& state) {
  // ABMC block-count sensitivity at k = 5.
  const auto& w = workload();
  AbmcOptions opts;
  opts.num_blocks = static_cast<index_t>(state.range(0));
  const auto o = abmc_order(w.a, opts);
  const auto permuted = permute_symmetric(w.a, o.perm);
  const auto split = split_triangular(permuted);
  AlignedVector<double> px(w.x.size());
  permute_vector<double>(o.perm, w.x, px);
  FbWorkspace<double> ws;
  AlignedVector<double> y(w.x.size());
  for (auto _ : state) {
    fbmpk_parallel_power<double>(split, o, std::span<const double>(px), 5, y,
                                 ws);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["colors"] = static_cast<double>(o.num_colors);
}
BENCHMARK(BM_FbmpkParallelBlocks)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(4096);

void BM_PlanPolynomial(benchmark::State& state) {
  const auto& w = workload();
  auto plan = MpkPlan::build(w.a);
  MpkPlan::Workspace ws;
  const AlignedVector<double> coeffs{1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125};
  AlignedVector<double> y(w.x.size());
  for (auto _ : state) {
    plan.polynomial(coeffs, w.x, y, ws);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_PlanPolynomial);

}  // namespace

BENCHMARK_MAIN();
