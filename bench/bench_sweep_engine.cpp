// Sweep-engine comparison: per-color barrier kernel versus the
// persistent-threads point-to-point engine (docs/PARALLELISM.md).
//
// Both run the identical ABMC schedule and produce bitwise-identical
// results; the only difference is synchronization (2·colors team
// barriers per forward/backward pair versus per-thread epoch waits on
// actual neighbors) and per-color partitioning (omp static by block
// count versus nnz-balanced LPT). The gap is the price of the
// barriers, so it grows with color count and thread count.
//
// Results land in BENCH_sweep_engine.json.
#include "bench_common.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  auto opts = perf::BenchOptions::parse(argc, argv);
  const int threads = opts.threads > 0 ? opts.threads : 4;
  const int k = opts.powers.empty() ? 8 : opts.powers.front();
  bench::print_banner("sweep engine — barrier vs point-to-point", opts);
  set_threads(threads);

  perf::Table table({"matrix", "colors", "barrier_ms", "p2p_ms", "speedup",
                     "meas/model"});
  bench::JsonReport report("sweep_engine");

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const auto x = bench::bench_vector(m.matrix.rows());
    const auto shape = perf::MatrixShape::of(m.matrix);

    PlanOptions barrier_opts;
    barrier_opts.abmc.num_blocks = opts.num_blocks;
    auto barrier_plan = MpkPlan::build(m.matrix, barrier_opts);

    PlanOptions p2p_opts = barrier_opts;
    p2p_opts.sweep.sync = SweepSync::kPointToPoint;
    p2p_opts.sweep.threads = threads;
    auto p2p_plan = MpkPlan::build(m.matrix, p2p_opts);

    MpkPlan::Workspace wb, wp;
    const double barrier_s =
        bench::time_plan_power(barrier_plan, wb, x, k, opts);
    const double p2p_s = bench::time_plan_power(p2p_plan, wp, x, k, opts);

    // Traffic validation (satellite of docs/OBSERVABILITY.md): the
    // analytic model's compulsory-byte estimate per A^k x evaluation,
    // cross-checked against hardware counters where a traffic-capable
    // PMU event opens. On restricted hosts measured stays null.
    const double sweeps = perf::fbmpk_sweep_count(k);
    const std::size_t bytes = perf::fbmpk_traffic(shape, k).total();
    const double modeled = static_cast<double>(bytes);
    AlignedVector<double> yb(static_cast<std::size_t>(m.matrix.rows()));
    AlignedVector<double> yp(static_cast<std::size_t>(m.matrix.rows()));
    std::string src_b, src_p;
    const double meas_b = bench::measure_dram_bytes(
        [&] { barrier_plan.power(x, k, yb, wb); }, opts.reps, &src_b);
    const double meas_p = bench::measure_dram_bytes(
        [&] { p2p_plan.power(x, k, yp, wp); }, opts.reps, &src_p);

    table.add_row({m.name, std::to_string(barrier_plan.stats().num_colors),
                   perf::Table::fmt(barrier_s * 1e3),
                   perf::Table::fmt(p2p_s * 1e3),
                   perf::Table::fmt_ratio(barrier_s / p2p_s),
                   meas_p >= 0 ? perf::Table::fmt_percent(meas_p / modeled)
                               : "n/a"});

    report.add({m.name, "barrier", k, threads, barrier_s,
                bench::JsonReport::gflops_of(shape, sweeps, barrier_s), bytes,
                modeled, meas_b, src_b});
    report.add({m.name, "engine_p2p", k, threads, p2p_s,
                bench::JsonReport::gflops_of(shape, sweeps, p2p_s), bytes,
                modeled, meas_p, src_p});
  }

  table.print();
  report.write();
  std::printf(
      "\nsame schedule, same FP ops, bitwise-identical results; the gap is "
      "synchronization:\n2 x colors full team barriers per pair (barrier) "
      "vs per-thread epoch waits on\nactual quotient-graph neighbors "
      "(point-to-point) plus nnz-LPT load balance.\n");
  return 0;
}
