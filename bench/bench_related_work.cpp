// Related-work comparison (paper §VI): FBMPK versus the
// communication-avoiding blocked MPK family (LB-MPK / Demmel et al.'s
// matrix-powers kernels) and the standard baseline, across k.
//
// The paper argues LB-MPK "drops significantly with a larger k (~6-8)"
// because it must keep many intermediates cached, while FBMPK keeps two.
// CA-MPK makes the mechanism explicit: its ghost regions (and redundant
// nonzeros) grow with k, so its advantage erodes exactly where FBMPK's
// grows. This bench reports both times and CA-MPK's measured redundancy.
#include "bench_common.hpp"
#include "kernels/camp.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  auto opts = perf::BenchOptions::parse(argc, argv);
  if (opts.powers.empty()) opts.powers = {2, 4, 6, 8};
  if (opts.matrices.empty())
    opts.matrices = {"G3_circuit", "pwtk", "Hook_1498", "nlpkkt120"};
  bench::print_banner("Related work — FBMPK vs CA-MPK vs baseline", opts);
  if (opts.threads > 0) set_threads(opts.threads);

  std::vector<std::string> headers{"matrix", "method"};
  for (int k : opts.powers) headers.push_back("k=" + std::to_string(k));
  perf::Table table(headers);

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const index_t n = m.matrix.rows();
    const auto x = bench::bench_vector(n);
    const auto fb_plan = bench::build_plan(m.matrix, opts, FbVariant::kBtb,
                                           /*parallel=*/false,
                                           /*reorder=*/false);
    MpkPlan::Workspace fws;

    std::vector<std::string> row_base{m.name, "baseline"};
    std::vector<std::string> row_fb{m.name, "fbmpk"};
    std::vector<std::string> row_camp{m.name, "ca-mpk"};
    std::vector<std::string> row_red{m.name, "  (redundancy)"};

    for (int k : opts.powers) {
      const double base_s = bench::time_baseline_mpk(m.matrix, x, k, opts);
      const double fb_s = bench::time_plan_power(fb_plan, fws, x, k, opts);

      // Fewer, larger blocks keep CA-MPK's ghost overhead as low as a
      // contiguous partition allows (favoring the comparator).
      const auto camp_plan = camp_build(m.matrix, k, 16);
      AlignedVector<double> basis(static_cast<std::size_t>(n) * (k + 1));
      const double camp_s =
          perf::time_runs(
              [&] { camp_power_all<double>(m.matrix, camp_plan, x, basis); },
              opts.reps, opts.warmup)
              .median();

      row_base.push_back(perf::Table::fmt(base_s * 1e3) + "ms");
      row_fb.push_back(perf::Table::fmt_ratio(base_s / fb_s));
      row_camp.push_back(perf::Table::fmt_ratio(base_s / camp_s));
      row_red.push_back(perf::Table::fmt(
          camp_plan.nnz_redundancy(m.matrix.nnz())));
    }
    table.add_row(std::move(row_base));
    table.add_row(std::move(row_fb));
    table.add_row(std::move(row_camp));
    table.add_row(std::move(row_red));
  }

  table.print();
  std::printf("\nfbmpk/ca-mpk rows are speedups over the baseline at each "
              "k; redundancy is CA-MPK's gathered nnz / matrix nnz.\n"
              "expected shape: CA-MPK's speedup decays as k grows (ghost "
              "blow-up) while FBMPK's improves — the paper's §VI argument "
              "against LB-MPK-style blocking.\n");
  return 0;
}
