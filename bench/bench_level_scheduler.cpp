// Level scheduler on the unstructured-matrix class (paper §VII +
// arXiv:2502.19284): power-law hub graphs and KKT saddle systems whose
// distance-2 coloring degenerates (many tiny colors), versus the FEM /
// circuit suite where ABMC's handful of fat colors wins.
//
// Each case times both schedulers end-to-end through MpkPlan and then
// runs the measured `autotune_scheduler` race the auto scheduler uses;
// the race's pick is recorded as its own JSON rung ("autotune:levels"
// or "autotune:abmc") so regression checks can assert the tuner keeps
// choosing levels on the hub graphs. Results land in
// BENCH_level_scheduler.json (schema v3).
//
// Matrix selection: the high-degree generators always run; suite
// matrices come from --matrices (default: a FEM mesh, the circuit
// network and the KKT analogue as contrast).
#include "bench_common.hpp"
#include "core/autotune.hpp"
#include "gen/random_sparse.hpp"

using namespace fbmpk;

namespace {

struct GenCase {
  std::string name;
  CsrMatrix<double> matrix;
  bool high_degree = false;
};

std::vector<GenCase> make_cases(const perf::BenchOptions& opts) {
  std::vector<GenCase> cases;
  const auto scaled = [&](index_t n) {
    return std::max<index_t>(1000, static_cast<index_t>(
                                       static_cast<double>(n) * opts.scale));
  };

  // Hub-heavy power-law graphs: the stronger the bias, the larger the
  // hubs and the worse distance-2 coloring degenerates.
  gen::PowerLawOptions hub;
  hub.avg_row_nnz = 10.0;
  hub.bias = 4.0;
  hub.seed = 71;
  cases.push_back({"powerlaw_hub", gen::make_power_law(scaled(40000), hub),
                   /*high_degree=*/true});

  gen::PowerLawOptions mild;
  mild.avg_row_nnz = 8.0;
  mild.bias = 2.0;
  mild.seed = 72;
  cases.push_back({"powerlaw_mild", gen::make_power_law(scaled(40000), mild),
                   /*high_degree=*/true});

  // Suite contrast: ABMC's home turf. --matrices overrides.
  const std::vector<std::string> suite =
      opts.matrices.empty()
          ? std::vector<std::string>{"cant", "G3_circuit", "nlpkkt120"}
          : opts.matrices;
  for (const auto& name : suite) {
    auto m = gen::make_suite_matrix(name, opts.scale);
    cases.push_back({m.name, std::move(m.matrix), /*high_degree=*/false});
  }
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = perf::BenchOptions::parse(argc, argv);
  const int threads = opts.threads > 0 ? opts.threads : max_threads();
  set_threads(threads);
  const int k = opts.powers.empty() ? 6 : opts.powers.front();
  bench::print_banner("level scheduler — hub graphs vs suite", opts);

  perf::Table table({"matrix", "rows", "colors", "levels(fwd)", "stages(fwd)",
                     "abmc_ms", "levels_ms", "autotune"});
  bench::JsonReport report("level_scheduler");

  for (auto& c : make_cases(opts)) {
    const auto& a = c.matrix;
    const auto x = bench::bench_vector(a.rows());
    const auto shape = perf::MatrixShape::of(a);

    PlanOptions abmc_opts;
    abmc_opts.abmc.num_blocks = opts.num_blocks;
    abmc_opts.scheduler = Scheduler::kAbmc;
    auto abmc_plan = MpkPlan::build(a, abmc_opts);

    PlanOptions lvl_opts;
    lvl_opts.reorder = false;
    lvl_opts.scheduler = Scheduler::kLevels;
    lvl_opts.sweep.sync = SweepSync::kPointToPoint;
    auto lvl_plan = MpkPlan::build(a, lvl_opts);

    MpkPlan::Workspace wa, wl;
    const double abmc_s = bench::time_plan_power(abmc_plan, wa, x, k, opts);
    const double lvl_s = bench::time_plan_power(lvl_plan, wl, x, k, opts);

    // The measured race build_autotuned_plan runs under kAuto: oracle
    // scores both schedulers, then times the contenders.
    const SchedulerRaceResult race = autotune_scheduler(a, k, opts.reps);
    const bool picked_levels = race.best == Scheduler::kLevels;

    const double sweeps = perf::fbmpk_sweep_count(k);
    const std::size_t bytes = perf::fbmpk_traffic(shape, k).total();
    const double modeled = static_cast<double>(bytes);
    report.add({c.name, "abmc", k, threads, abmc_s,
                bench::JsonReport::gflops_of(shape, sweeps, abmc_s), bytes,
                modeled});
    report.add({c.name, "levels_engine", k, threads, lvl_s,
                bench::JsonReport::gflops_of(shape, sweeps, lvl_s), bytes,
                modeled});
    // The pick rung: seconds is the winner's measured race time (0 when
    // the race was decided structurally or by the oracle alone).
    const double pick_s =
        picked_levels ? race.levels_seconds : race.abmc_seconds;
    report.add({c.name, picked_levels ? "autotune:levels" : "autotune:abmc",
                k, threads, pick_s,
                bench::JsonReport::gflops_of(shape, sweeps, pick_s), bytes,
                modeled});

    table.add_row(
        {c.name, std::to_string(a.rows()),
         std::to_string(abmc_plan.stats().num_colors),
         std::to_string(lvl_plan.stats().num_levels_forward),
         std::to_string(lvl_plan.level_sweep_schedule().fwd.num_stages),
         perf::Table::fmt(abmc_s * 1e3), perf::Table::fmt(lvl_s * 1e3),
         std::string(picked_levels ? "levels" : "abmc") +
             (race.measured ? " (timed)" : " (model)")});
  }

  table.print();
  report.write();
  std::printf(
      "\nhub graphs blow up the distance-2 color count (every hub conflicts "
      "with\nnearly every block), so ABMC degenerates toward serial; the "
      "level engine's\nshallow stage DAG keeps the natural order and wins — "
      "the measured autotune\nrace should pick `levels` there and `abmc` on "
      "the FEM/circuit suite.\n");
  return 0;
}
