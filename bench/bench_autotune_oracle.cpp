// Model-guided autotuning: oracle-pruned vs exhaustive plan build
// (docs/AUTOTUNING.md).
//
// The serving core builds plans on cache misses, where the measured
// autotune sweep is the dominant p99 cost. The traffic oracle scores
// every block-count candidate with the sampled cache-simulator replay
// and times only the top-K, so the question this bench answers per
// suite matrix is twofold:
//
//   quality — is the pruned pick's *exhaustively measured* sweep time
//   within a few percent of the exhaustive winner's? (Both times come
//   from the same exhaustive measurement table, so the comparison is
//   not at the mercy of two independent noisy timings.)
//
//   latency — how much faster is the oracle-guided sweep wall-clock
//   than timing every rung of the ladder?
//
// An 8-rung block ladder (vs the 5-rung library default) is the
// regime the oracle exists for: the wider the search, the more an
// O(top-K) measurement pass saves. Results land in
// BENCH_autotune_oracle.json, four records per matrix:
//
//   autotune_exhaustive — seconds = exhaustive sweep wall-clock,
//                         bytes_moved = candidates timed (all 8)
//   autotune_oracle     — seconds = pruned sweep wall-clock,
//                         bytes_moved = candidates timed (top-K),
//                         modeled_bytes = the pick's predicted DRAM
//   exhaustive_pick     — seconds = exhaustive winner's kernel time
//   oracle_pick         — seconds = the pruned pick's kernel time,
//                         looked up in the exhaustive table
//
// so pick quality is oracle_pick/exhaustive_pick and build-latency
// reduction is autotune_exhaustive/autotune_oracle, both derivable
// from the JSON alone (the CI autotune-oracle job checks them).
#include "bench_common.hpp"

#include <array>

#include "core/autotune.hpp"
#include "support/timer.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  auto opts = perf::BenchOptions::parse(argc, argv);
  bench::print_banner("model-guided autotune — oracle-pruned vs exhaustive",
                      opts);

  const int k = opts.powers.empty() ? 4 : opts.powers.front();
  const std::array<index_t, 8> ladder = {64,  128, 256,  384,
                                         512, 768, 1024, 2048};
  OracleOptions oracle;  // defaults: enabled, top_k = 2
  constexpr OracleOptions kExhaustive{.enabled = false};

  perf::Table table({"matrix", "exh_ms", "oracle_ms", "speedup", "timed",
                     "exh_pick", "oracle_pick", "quality"});
  bench::JsonReport report("autotune_oracle");

  int within5 = 0, cases = 0;
  std::vector<double> speedups;
  for (const auto& name : bench::selected_names(opts)) {
    const auto sm = gen::make_suite_matrix(name, opts.scale);
    const auto& a = sm.matrix;
    const int threads = opts.threads > 0 ? opts.threads : max_threads();

    Timer te;
    const AutotuneResult exh =
        autotune_block_count(a, k, ladder, opts.reps, {}, kExhaustive);
    const double exh_wall = te.seconds();

    Timer to;
    const AutotuneResult pruned =
        autotune_block_count(a, k, ladder, opts.reps, {}, oracle);
    const double oracle_wall = to.seconds();

    // The pruned pick's time in the exhaustive table: the honest
    // "what did the pruned search cost in pick quality" number.
    double pick_seconds = -1.0;
    for (const auto& s : exh.samples)
      if (s.num_blocks == pruned.best_blocks) pick_seconds = s.seconds;
    FBMPK_CHECK_MSG(pick_seconds > 0.0,
                    "oracle pick " << pruned.best_blocks
                                   << " missing from exhaustive table");

    const double speedup = exh_wall / oracle_wall;
    const double quality = pick_seconds / exh.best_seconds;
    speedups.push_back(speedup);
    ++cases;
    if (quality <= 1.05) ++within5;

    table.add_row({name, perf::Table::fmt(exh_wall * 1e3),
                   perf::Table::fmt(oracle_wall * 1e3),
                   perf::Table::fmt_ratio(speedup),
                   std::to_string(pruned.candidates_timed) + "/" +
                       std::to_string(ladder.size()),
                   perf::Table::fmt(exh.best_seconds * 1e3),
                   perf::Table::fmt(pick_seconds * 1e3),
                   perf::Table::fmt_ratio(quality)});

    report.add({name, "autotune_exhaustive", k, threads, exh_wall, 0.0,
                static_cast<std::size_t>(exh.candidates_timed)});
    report.add({name, "autotune_oracle", k, threads, oracle_wall, 0.0,
                static_cast<std::size_t>(pruned.candidates_timed),
                pruned.best_predicted_bytes, -1.0, "cache_sim"});
    report.add({name, "exhaustive_pick", k, threads, exh.best_seconds, 0.0,
                static_cast<std::size_t>(exh.best_blocks)});
    report.add({name, "oracle_pick", k, threads, pick_seconds, 0.0,
                static_cast<std::size_t>(pruned.best_blocks)});
  }
  table.print();

  std::sort(speedups.begin(), speedups.end());
  const double median_speedup =
      speedups.empty() ? 0.0 : speedups[speedups.size() / 2];
  std::printf("\npick within 5%% of exhaustive winner: %d/%d matrices\n",
              within5, cases);
  std::printf("median plan-build speedup: %.2fx (acceptance: >= 3x)\n",
              median_speedup);
  report.write();
  return 0;
}
