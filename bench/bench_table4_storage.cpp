// Table IV reproduction: storage of the L+U+d split versus plain CSR.
//
// Paper formulas (per Table IV):
//   CSR:   col_ind nnz, row_ptr n+1, values nnz
//   L+U+d: col_ind nnz-nd, row_ptr 2(n+1), values nnz-nd, d of length n
// (nd = stored diagonal entries; the paper assumes a full diagonal).
// The two layouts are nearly identical in size; this bench verifies it
// on every suite matrix with measured byte counts.
#include "bench_common.hpp"
#include "sparse/split.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  auto opts = perf::BenchOptions::parse(argc, argv);
  bench::print_banner("Table IV — storage overhead CSR vs L+U+d", opts);

  std::printf("formulas (entries): CSR = nnz idx + (n+1) ptr + nnz val;\n"
              "L+U+d = (nnz-nd) idx + 2(n+1) ptr + (nnz-nd) val + n diag\n\n");

  perf::Table table({"matrix", "rows", "nnz", "csr_MB", "split_MB",
                     "overhead"});
  RunningStats overheads;

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const auto s = split_triangular(m.matrix);
    const double csr_b = static_cast<double>(m.matrix.storage_bytes());
    const double split_b = static_cast<double>(s.storage_bytes());
    const double overhead = split_b / csr_b;
    overheads.add(overhead);
    table.add_row({m.name, std::to_string(m.matrix.rows()),
                   std::to_string(m.matrix.nnz()),
                   perf::Table::fmt(csr_b / (1024 * 1024)),
                   perf::Table::fmt(split_b / (1024 * 1024)),
                   perf::Table::fmt_percent(overhead)});
  }

  table.print();
  std::printf("\ngeomean split/CSR size: %.1f%% (paper: \"nearly the "
              "same\"; the diagonal stored as a dense vector offsets the "
              "extra row_ptr)\n",
              overheads.geomean() * 100.0);
  return 0;
}
