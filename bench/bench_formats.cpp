// Storage-format study (paper §VII, "Sparse matrix storage formats"):
// CSR (serial and unrolled) versus SELL-C-sigma SpMV across the suite,
// plus each matrix's SELL padding factor — the paper's stated future
// direction for the FBMPK triangles.
#include "bench_common.hpp"
#include "kernels/spmv.hpp"
#include "sparse/sell.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  const auto opts = perf::BenchOptions::parse(argc, argv);
  bench::print_banner("Formats — CSR vs SELL-C-sigma SpMV", opts);
  if (opts.threads > 0) set_threads(opts.threads);

  perf::Table table({"matrix", "csr_ms", "sell8_ms", "sell32_ms",
                     "sell/csr", "padding8", "padding32"});
  RunningStats ratios;

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const index_t n = m.matrix.rows();
    const auto x = bench::bench_vector(n);
    AlignedVector<double> y(static_cast<std::size_t>(n));

    const auto sell8 = SellMatrix<double>::from_csr(m.matrix, 8, 8 * 64);
    const auto sell32 = SellMatrix<double>::from_csr(m.matrix, 32, 32 * 64);

    const double csr_s =
        perf::time_runs(
            [&] { spmv<double>(m.matrix, x, y, SpmvExec::kUnrolled); },
            opts.reps, opts.warmup)
            .median();
    const double sell8_s =
        perf::time_runs([&] { sell8.spmv(x, y); }, opts.reps, opts.warmup)
            .median();
    const double sell32_s =
        perf::time_runs([&] { sell32.spmv(x, y); }, opts.reps, opts.warmup)
            .median();

    const double best_sell = std::min(sell8_s, sell32_s);
    ratios.add(best_sell / csr_s);
    table.add_row({m.name, perf::Table::fmt(csr_s * 1e3),
                   perf::Table::fmt(sell8_s * 1e3),
                   perf::Table::fmt(sell32_s * 1e3),
                   perf::Table::fmt(best_sell / csr_s),
                   perf::Table::fmt(sell8.padding_factor()),
                   perf::Table::fmt(sell32.padding_factor())});
  }

  table.print();
  std::printf("\ngeomean best-SELL/CSR time ratio: %.2f (< 1 means SELL "
              "wins). SELL's lockstep lanes pay off with SIMD and uniform "
              "rows; scalar cores and irregular rows favor CSR — exactly "
              "the trade-off behind the paper's future-work note (§VII).\n",
              ratios.geomean());
  return 0;
}
