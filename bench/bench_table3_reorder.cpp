// Table III reproduction: effect of the ABMC reorder on a *single* SpMV
// invocation — time(SpMV on original A) / time(SpMV on ABMC-permuted A).
// A ratio > 1 means the reordered matrix is faster.
//
// Paper result: mostly ~1.0 (neutral); audikw_1 1.80 and inline_1 1.44
// gain locality; worst slowdown under 3% (cant 0.97).
#include "bench_common.hpp"
#include "kernels/spmv.hpp"
#include "reorder/abmc.hpp"
#include "reorder/permutation.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  const auto opts = perf::BenchOptions::parse(argc, argv);
  bench::print_banner("Table III — single-SpMV ratio after ABMC", opts);
  if (opts.threads > 0) set_threads(opts.threads);

  perf::Table table({"matrix", "orig_ms", "abmc_ms", "ratio", "colors"});
  RunningStats ratios;

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const index_t n = m.matrix.rows();
    AbmcOptions aopts;
    aopts.num_blocks = opts.num_blocks;
    const auto o = abmc_order(m.matrix, aopts);
    const auto permuted = permute_symmetric(m.matrix, o.perm);

    const auto x = bench::bench_vector(n);
    AlignedVector<double> y(static_cast<std::size_t>(n));
    const double t_orig =
        perf::time_runs(
            [&] { spmv<double>(m.matrix, x, y, SpmvExec::kParallel); },
            opts.reps, opts.warmup)
            .geomean();
    const double t_abmc =
        perf::time_runs(
            [&] { spmv<double>(permuted, x, y, SpmvExec::kParallel); },
            opts.reps, opts.warmup)
            .geomean();
    const double ratio = t_orig / t_abmc;
    ratios.add(ratio);
    table.add_row({m.name, perf::Table::fmt(t_orig * 1e3),
                   perf::Table::fmt(t_abmc * 1e3),
                   perf::Table::fmt(ratio),
                   std::to_string(o.num_colors)});
  }

  table.print();
  std::printf("\ngeomean ratio %.3f (paper: ~1.0 for most inputs, up to "
              "1.80 for audikw_1, never below 0.97)\n",
              ratios.geomean());
  return 0;
}
