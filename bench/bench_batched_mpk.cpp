// Batched right-hand sides: one multi-vector sweep over the
// xy[2·B·n] interleaved layout vs B independent single-vector runs
// (PR 7).
//
// Both sides share one serial plan in exact mode — the scalar backend
// (the library and serving default; the batched lanes are bitwise
// identical to exactly this path), band-compressed column indices,
// fp64 values — so the only variable is the batching: the singles
// stream the triangles once per vector while try_power_batch streams
// them once per chunk and pays only the extra vector lanes. This is
// the comparison the request coalescer lives by: what one batched
// rung saves over draining the same queue one exact-mode request at a
// time. The traffic model with nvec quantifies the amortization; the
// aggregate-throughput ratio reports what the machine delivered.
//
// Results land in BENCH_batched_mpk.json: per (matrix, B) a
// "singles_bN" record (B sequential try_power calls, total seconds)
// and a "batched_bN" record (one try_power_batch call), both with
// gflops over the whole batch.
#include "bench_common.hpp"

#include "kernels/dispatch.hpp"
#include "support/rng.hpp"

using namespace fbmpk;

namespace {

/// Median seconds of B sequential single-vector runs (total, not per
/// vector): the unbatched server loop this PR replaces.
double time_singles(const MpkPlan& plan, MpkPlan::Workspace& ws,
                    const std::vector<AlignedVector<double>>& xs,
                    std::vector<AlignedVector<double>>& ys, int nvec, int k,
                    const perf::BenchOptions& o) {
  return bench::robust_seconds(perf::time_runs(
      [&] {
        for (int b = 0; b < nvec; ++b)
          plan.power(xs[static_cast<std::size_t>(b)], k,
                     ys[static_cast<std::size_t>(b)], ws);
      },
      o.reps, o.warmup));
}

/// Median seconds of one batched call over the same nvec vectors.
double time_batched(const MpkPlan& plan, const double* const* xp,
                    double* const* yp, int nvec, int k,
                    const perf::BenchOptions& o) {
  return bench::robust_seconds(perf::time_runs(
      [&] {
        const Status st =
            plan.try_power_batch(xp, static_cast<index_t>(nvec), k, yp);
        st.value();  // rethrow: a bench case must not fail
      },
      o.reps, o.warmup));
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = perf::BenchOptions::parse(argc, argv);
  bench::print_banner("batched right-hand sides — B-vector sweeps vs B runs",
                      opts);
  set_threads(1);  // serial pipeline: isolate the memory streams

  // Exact mode on both sides: the scalar backend is the default the
  // service runs, and it is the accumulation order every batched lane
  // reproduces bitwise.
  const KernelBackend backend = KernelBackend::kScalar;
  std::printf("backend=%s indices=compressed values=fp64 path=serial\n\n",
              backend_name(backend));

  const int kPower = opts.powers.empty() ? 8 : opts.powers.front();
  const std::vector<int> widths = {1, 2, 4, 8, 16};
  const int max_width = widths.back();

  perf::Table table({"matrix", "B", "singles_ms", "batched_ms", "speedup",
                     "model_ratio"});
  bench::JsonReport report("batched_mpk");

  // Aggregate throughput at B = 8 across the suite: the acceptance bar
  // is >= 1.5x vs eight independent single-vector sweeps.
  double agg_singles_b8 = 0.0;
  double agg_batched_b8 = 0.0;

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const auto shape = perf::MatrixShape::of(m.matrix);
    const auto n = static_cast<std::size_t>(m.matrix.rows());

    PlanOptions popts;
    popts.parallel = false;
    popts.kernel_backend = backend;
    popts.index_compress = true;
    auto plan = MpkPlan::build(m.matrix, popts);
    MpkPlan::Workspace ws;

    // Distinct deterministic right-hand sides, one per lane.
    std::vector<AlignedVector<double>> xs, ys;
    std::vector<const double*> xp;
    std::vector<double*> yp;
    for (int b = 0; b < max_width; ++b) {
      Rng rng(0xba7c4 + static_cast<std::uint64_t>(b));
      AlignedVector<double> x(n);
      for (auto& e : x) e = rng.next_double(-1.0, 1.0);
      xs.push_back(std::move(x));
      ys.emplace_back(n);
      xp.push_back(xs.back().data());
      yp.push_back(ys.back().data());
    }

    const double sweeps = perf::fbmpk_sweep_count(kPower);
    const double idx_bytes = plan.packed_index().bytes_per_nnz();
    const auto model_bytes = [&](int nvec) {
      return perf::fbmpk_traffic_mixed(shape, kPower, idx_bytes,
                                       ValuePrecision::kFp64, nvec);
    };

    for (const int nvec : widths) {
      const double s_singles =
          time_singles(plan, ws, xs, ys, nvec, kPower, opts);
      const double s_batched =
          time_batched(plan, xp.data(), yp.data(), nvec, kPower, opts);

      // Modeled traffic ratio: nvec single runs stream the matrix nvec
      // times; the batch streams it once (vector lanes cost the same).
      const auto batched_traffic = model_bytes(nvec);
      const std::size_t singles_traffic =
          static_cast<std::size_t>(nvec) * model_bytes(1).total();
      const double model_ratio =
          static_cast<double>(singles_traffic) /
          static_cast<double>(batched_traffic.total());

      table.add_row({m.name, std::to_string(nvec),
                     perf::Table::fmt(s_singles * 1e3),
                     perf::Table::fmt(s_batched * 1e3),
                     perf::Table::fmt_ratio(s_singles / s_batched),
                     perf::Table::fmt_ratio(model_ratio)});

      const double batch_sweeps = sweeps * nvec;  // gflops over all lanes
      report.add({m.name, "singles_b" + std::to_string(nvec), kPower, 1,
                  s_singles,
                  bench::JsonReport::gflops_of(shape, batch_sweeps, s_singles),
                  singles_traffic});
      report.add({m.name, "batched_b" + std::to_string(nvec), kPower, 1,
                  s_batched,
                  bench::JsonReport::gflops_of(shape, batch_sweeps, s_batched),
                  batched_traffic.total()});

      if (nvec == 8) {
        agg_singles_b8 += s_singles;
        agg_batched_b8 += s_batched;
      }
    }
  }

  table.print();
  report.write();

  const double agg = agg_singles_b8 / agg_batched_b8;
  std::printf(
      "\naggregate B=8 throughput vs 8 independent runs: %.2fx "
      "(target >= 1.5x)\n",
      agg);
  std::printf(
      "one batched sweep streams the triangles once per chunk; the "
      "singles stream\nthem once per vector. model_ratio is the "
      "traffic-model bound on the speedup.\n");
  return 0;
}
