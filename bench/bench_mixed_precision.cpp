// Mixed-precision value storage: fp64 vs fp32 vs split hi/lo streams
// through the identical serial FBMPK pipeline (PR 4).
//
// All configurations share one backend (the dispatched auto choice)
// and band-compressed column indices, so the only variable is the
// stored value stream: 8 B/nnz doubles, 4 B/nnz floats, or the 8 B/nnz
// hi/lo float pair. Accumulation is always fp64 (docs/KERNELS.md
// bounds the value-rounding error). bytes_moved uses the
// precision-aware traffic model, so the fp32 rows show both the
// measured speedup and the modelled traffic reduction it comes from.
//
// Results land in BENCH_mixed_precision.json.
#include "bench_common.hpp"

#include "kernels/dispatch.hpp"
#include "sparse/packed_tri.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  auto opts = perf::BenchOptions::parse(argc, argv);
  bench::print_banner("mixed-precision values — fp64 vs fp32 vs split",
                      opts);
  set_threads(1);  // isolate the value stream, not the schedule

  const KernelBackend backend = resolve_backend(KernelBackend::kAuto);
  std::printf("backend=%s indices=compressed accumulation=fp64\n\n",
              backend_name(backend));

  const std::vector<int> powers =
      opts.powers.empty() ? std::vector<int>{4, 16} : opts.powers;
  const ValuePrecision precisions[] = {
      ValuePrecision::kFp64, ValuePrecision::kFp32, ValuePrecision::kSplit};

  perf::Table table(
      {"matrix", "k", "values", "ms", "vs_fp64", "value_MB"});
  bench::JsonReport report("mixed_precision");

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const auto x = bench::bench_vector(m.matrix.rows());
    const auto shape = perf::MatrixShape::of(m.matrix);

    for (const int k : powers) {
      double fp64_s = 0.0;
      for (const ValuePrecision prec : precisions) {
        PlanOptions popts;
        popts.parallel = false;  // serial: value-stream time only
        popts.kernel_backend = backend;
        popts.index_compress = true;
        popts.value_precision = prec;
        auto plan = MpkPlan::build(m.matrix, popts);

        MpkPlan::Workspace ws;
        const double s = bench::time_plan_power(plan, ws, x, k, opts);
        if (prec == ValuePrecision::kFp64) fp64_s = s;

        const std::size_t value_bytes =
            prec == ValuePrecision::kFp64
                ? static_cast<std::size_t>(shape.nnz) * sizeof(double)
                : plan.stats().packed_value_bytes;
        table.add_row({m.name, std::to_string(k), precision_name(prec),
                       perf::Table::fmt(s * 1e3),
                       perf::Table::fmt_ratio(fp64_s / s),
                       perf::Table::fmt(static_cast<double>(value_bytes) /
                                        (1024.0 * 1024.0))});

        const double sweeps = perf::fbmpk_sweep_count(k);
        const double idx_bytes = plan.packed_index().bytes_per_nnz();
        const std::size_t bytes =
            perf::fbmpk_traffic_mixed(shape, k, idx_bytes, prec).total();
        report.add({m.name, std::string("values_") + precision_name(prec),
                    k, 1, s,
                    bench::JsonReport::gflops_of(shape, sweeps, s), bytes});
      }
    }
  }

  table.print();
  report.write();
  std::printf(
      "\nsingle-thread serial pipeline, one backend, compressed indices; "
      "only the stored\nvalue stream changes. fp32 halves value traffic "
      "(4 B/nnz); split keeps 8 B/nnz\nbut decodes losslessly when every "
      "value survives the hi/lo round-trip.\n");
  return 0;
}
