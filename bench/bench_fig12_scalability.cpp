// Figure 12 reproduction: FBMPK thread scalability on FT-2000+ at k=5,
// normalized to single-threaded standard MPK.
//
// Paper result: average speedup grows from 2.08x at 4 threads to 18.05x
// at 64; small matrices (cant, G3_circuit) flatten or regress at high
// thread counts; inline_1 scales best.
//
// Substitution note (DESIGN.md §4): this container exposes ONE core, so
// the primary reproduction is the platform cost model sweep; a real
// OpenMP timing sweep is printed as well for transparency (thread
// counts above the core count oversubscribe and are not meaningful).
#include "bench_common.hpp"
#include "perf/cost_model.hpp"
#include "reorder/permutation.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  const auto opts = perf::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 12 — scalability on FT2000+ (model), k=5",
                      opts);
  const int k = opts.powers.empty() ? 5 : opts.powers.front();
  const std::vector<int> thread_counts{4, 8, 16, 24, 32, 48, 64};
  const auto platform = perf::platform_by_name("FT2000+");

  std::vector<std::string> headers{"matrix"};
  for (int t : thread_counts) headers.push_back("t=" + std::to_string(t));
  perf::Table table(headers);
  std::vector<RunningStats> per_t(thread_counts.size());

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const auto plan = bench::build_plan(m.matrix, opts);
    const auto permuted = permute_symmetric(m.matrix, plan.permutation());
    const auto shape = perf::WorkloadShape::of(permuted, plan.schedule());

    std::vector<std::string> row{m.name};
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      const double s = perf::predict_fbmpk_scalability(platform, shape, k,
                                                       thread_counts[i]);
      per_t[i].add(s);
      row.push_back(perf::Table::fmt_ratio(s));
    }
    table.add_row(std::move(row));
  }

  std::vector<std::string> avg{"average"};
  for (auto& s : per_t) avg.push_back(perf::Table::fmt_ratio(s.mean()));
  table.add_row(std::move(avg));
  table.print();
  std::printf("\npaper: average 2.08x @4 threads -> 18.05x @64 threads; "
              "small matrices flatten at high thread counts\n");

  // Real measured sweep on this host (limited by available cores).
  std::printf("\nmeasured on this host (%d hardware thread(s)):\n",
              max_threads());
  perf::Table measured({"matrix", "t=1 speedup vs 1-thread baseline"});
  bench::JsonReport report("fig12_scalability");
  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const auto x = bench::bench_vector(m.matrix.rows());
    const auto plan = bench::build_plan(m.matrix, opts);
    const auto shape = perf::MatrixShape::of(m.matrix);
    MpkPlan::Workspace ws;
    set_threads(1);
    const double base1 = bench::time_baseline_mpk(m.matrix, x, k, opts);
    const double fb1 = bench::time_plan_power(plan, ws, x, k, opts);
    measured.add_row({m.name, perf::Table::fmt_ratio(base1 / fb1)});
    report.add({m.name, "mpk", k, 1, base1,
                bench::JsonReport::gflops_of(
                    shape, perf::standard_sweep_count(k), base1),
                perf::standard_mpk_traffic(shape, k).total()});
    report.add({m.name, "fbmpk", k, 1, fb1,
                bench::JsonReport::gflops_of(shape,
                                             perf::fbmpk_sweep_count(k), fb1),
                perf::fbmpk_traffic(shape, k).total()});
  }
  measured.print();
  report.write();
  return 0;
}
