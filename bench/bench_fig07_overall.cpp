// Figure 7 reproduction: FBMPK speedup over the standard MPK baseline
// with power k = 5 across the 14-matrix suite.
//
// Paper result: average speedups of 1.50x / 1.54x / 1.47x / 1.73x on
// FT-2000+ / ThunderX2 / KP920 / Xeon, max 2.32x. Our substrate is one
// CPU core, so the measured column reflects the serial memory-traffic
// effect; the model columns use the platform cost model (DESIGN.md §4).
#include "bench_common.hpp"
#include "perf/cost_model.hpp"
#include "reorder/permutation.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  const auto opts = perf::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 7 — overall speedup, k=5", opts);
  if (opts.threads > 0) set_threads(opts.threads);
  const int k = opts.powers.empty() ? 5 : opts.powers.front();

  perf::Table table({"matrix", "rows", "nnz", "baseline_ms", "fbmpk_ms",
                     "speedup", "abmc_path", "model:FT2000+", "model:Xeon"});
  RunningStats speedups, abmc_speedups, model_ft, model_xeon;

  for (const auto& name : bench::selected_names(opts)) {
    const auto m = gen::make_suite_matrix(name, opts.scale);
    const auto x = bench::bench_vector(m.matrix.rows());
    // Primary measurement: the serial FB+BtB pipeline — the memory-
    // traffic effect a single core can express. The ABMC-scheduled
    // parallel path is also timed (at this host's thread count) for
    // transparency; its coloring permutation only pays off multi-core.
    const auto plan_serial = bench::build_plan(
        m.matrix, opts, FbVariant::kBtb, /*parallel=*/false,
        /*reorder=*/false);
    const auto plan = bench::build_plan(m.matrix, opts);
    MpkPlan::Workspace ws, ws2;

    const double base_s = bench::time_baseline_mpk(m.matrix, x, k, opts);
    const double fb_s = bench::time_plan_power(plan_serial, ws, x, k, opts);
    const double abmc_s = bench::time_plan_power(plan, ws2, x, k, opts);
    const double speedup = base_s / fb_s;
    speedups.add(speedup);
    abmc_speedups.add(base_s / abmc_s);

    // Platform-model predictions at full core counts.
    const auto permuted = permute_symmetric(m.matrix, plan.permutation());
    const auto shape = perf::WorkloadShape::of(permuted, plan.schedule());
    auto model_speedup = [&](const char* platform) {
      const auto p = perf::platform_by_name(platform);
      return perf::predict_standard_mpk_seconds(p, shape, k, p.cores) /
             perf::predict_fbmpk_seconds(p, shape, k, p.cores);
    };
    const double ft = model_speedup("FT2000+");
    const double xeon = model_speedup("Xeon");
    model_ft.add(ft);
    model_xeon.add(xeon);

    table.add_row({m.name, std::to_string(m.matrix.rows()),
                   std::to_string(m.matrix.nnz()),
                   perf::Table::fmt(base_s * 1e3),
                   perf::Table::fmt(fb_s * 1e3),
                   perf::Table::fmt_ratio(speedup),
                   perf::Table::fmt_ratio(base_s / abmc_s),
                   perf::Table::fmt_ratio(ft),
                   perf::Table::fmt_ratio(xeon)});
  }

  table.print();
  std::printf(
      "\ngeomean speedup: measured %.2fx (abmc path %.2fx) | model FT2000+ "
      "%.2fx | model Xeon %.2fx\n",
      speedups.geomean(), abmc_speedups.geomean(), model_ft.geomean(),
      model_xeon.geomean());
  std::printf("paper (k=5 averages): FT2000+ 1.50x, ThunderX2 1.54x, "
              "KP920 1.47x, Xeon 1.73x; max 2.32x\n");
  return 0;
}
